//! Live-server integration: submit → run → report → cache → drain,
//! all over real sockets against a `Server` in this process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use nomc_serve::http::{self, ClientResponse, Method, Parsed};
use nomc_serve::{ServeConfig, Server};
use nomc_sim::Scenario;
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration};

fn test_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_secs(1));
    b.build().expect("valid test scenario")
}

fn spec_json(seeds: &[u64]) -> String {
    spec_json_with(seeds, 200_000)
}

fn spec_json_with(seeds: &[u64], budget: u64) -> String {
    let scenario = nomc_json::to_string(&test_scenario());
    let seeds = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"scenario\":{scenario},\"seeds\":[{seeds}],\"budget\":{budget},\"retries\":1,\"checkpoint_every\":50000}}"
    )
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("nomc-serve-roundtrip")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir creatable");
    dir
}

fn exchange(
    addr: std::net::SocketAddr,
    method: Method,
    target: &str,
    body: &[u8],
) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&http::render_request(method, target, body))
        .expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    match http::parse_response(&bytes).expect("valid response") {
        Parsed::Complete { value, .. } => value,
        Parsed::Partial => panic!("truncated response: {:?}", String::from_utf8_lossy(&bytes)),
    }
}

fn body_text(resp: &ClientResponse) -> String {
    String::from_utf8_lossy(&resp.body).into_owned()
}

#[test]
fn submit_runs_caches_and_drains() {
    let state = temp_dir("roundtrip");
    let server = Server::start(ServeConfig::new("127.0.0.1:0", &state)).expect("server boots");
    let addr = server.addr();

    // The bound address is published for :0 runs.
    let published = std::fs::read_to_string(state.join("serve.addr")).expect("serve.addr");
    assert_eq!(published.trim(), addr.to_string());

    // Health before any work.
    let health = exchange(addr, Method::Get, "/healthz", b"");
    assert_eq!(health.status, 200);
    assert!(body_text(&health).contains("\"status\":\"ok\""));

    // Submit: accepted as new work.
    let spec = spec_json(&[1, 2]);
    let accepted = exchange(addr, Method::Post, "/jobs", spec.as_bytes());
    assert_eq!(accepted.status, 202, "{}", body_text(&accepted));
    let accepted_body = body_text(&accepted);
    let job_hex = accepted_body
        .split("\"job\":\"")
        .nth(1)
        .and_then(|rest| rest.get(..16))
        .expect("job id in ack")
        .to_string();

    // Poll until done.
    let status_target = format!("/jobs/{job_hex}");
    let mut done = false;
    for _ in 0..600 {
        let status = exchange(addr, Method::Get, &status_target, b"");
        assert_eq!(status.status, 200);
        let text = body_text(&status);
        assert!(!text.contains("\"state\":\"failed\""), "job failed: {text}");
        if text.contains("\"state\":\"done\"") {
            assert!(text.contains("\"report\":"), "done status embeds report");
            done = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(done, "job did not finish in time");

    // The report endpoint serves the on-disk bytes exactly.
    let report_target = format!("/jobs/{job_hex}/report");
    let report = exchange(addr, Method::Get, &report_target, b"");
    assert_eq!(report.status, 200);
    let on_disk =
        std::fs::read(state.join("jobs").join(&job_hex).join("report.json")).expect("report file");
    assert_eq!(
        report.body, on_disk,
        "served report must be the file's bytes"
    );

    // Resubmitting identical work is a cache hit, not a new job.
    let resubmit = exchange(addr, Method::Post, "/jobs", spec.as_bytes());
    assert_eq!(resubmit.status, 200, "{}", body_text(&resubmit));
    let resubmit_body = body_text(&resubmit);
    assert!(resubmit_body.contains("\"cached\":true"), "{resubmit_body}");
    assert!(resubmit_body.contains(&job_hex));

    // The event stream replays the finished job's story and ends.
    let events_target = format!("/jobs/{job_hex}/events");
    let events = {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&http::render_request(Method::Get, &events_target, b""))
            .expect("send request");
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("read stream");
        String::from_utf8_lossy(&bytes).into_owned()
    };
    assert!(events.contains("\"event\":\"started\""), "{events}");
    assert!(events.contains("\"event\":\"done\""), "{events}");

    // Unknown and malformed ids are 404s, wrong method is 405.
    assert_eq!(
        exchange(addr, Method::Get, "/jobs/0000000000000000", b"").status,
        404
    );
    assert_eq!(
        exchange(addr, Method::Get, "/jobs/nonsense", b"").status,
        404
    );
    assert_eq!(exchange(addr, Method::Get, "/jobs", b"").status, 405);

    // Garbage on the wire gets a typed 4xx, and the server survives it.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"\x16\x03\x01\x02\x00garbage\r\n\r\n")
            .expect("send");
        let mut bytes = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.read_to_end(&mut bytes).expect("read");
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 4"), "{text}");
    }
    assert_eq!(exchange(addr, Method::Get, "/healthz", b"").status, 200);

    // Drain: the server stops listening and exits; new connections are
    // refused (in-flight submissions racing the drain get a 503 from
    // the admission layer, covered by the registry tests).
    server.drain();
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "drained server must not accept connections"
    );
}

#[test]
fn invalid_specs_are_rejected_with_400() {
    let state = temp_dir("rejects");
    let server = Server::start(ServeConfig::new("127.0.0.1:0", &state)).expect("server boots");
    let addr = server.addr();

    for (body, needle) in [
        (b"not json".to_vec(), "bad job spec"),
        (spec_json(&[]).into_bytes(), "at least one member"),
        (spec_json(&[3, 3]).into_bytes(), "more than once"),
        (
            spec_json(&[1])
                .replace("\"retries\":1", "\"retries\":99")
                .into_bytes(),
            "exceeds the cap",
        ),
        (
            spec_json(&[1])
                .replace("\"budget\":200000", "\"budget\":0")
                .into_bytes(),
            "at least 1 event",
        ),
    ] {
        let resp = exchange(addr, Method::Post, "/jobs", &body);
        assert_eq!(resp.status, 400, "{}", body_text(&resp));
        assert!(body_text(&resp).contains(needle), "{}", body_text(&resp));
    }

    // Nothing was admitted.
    let health = body_text(&exchange(addr, Method::Get, "/healthz", b""));
    assert!(health.contains("\"queued\":0"), "{health}");
    server.drain();
    server.join();
}

#[test]
fn full_queue_sheds_with_retry_after() {
    let state = temp_dir("shed");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &state);
    // One slot, and no worker fast enough to drain it: workers poll
    // jobs in a loop, so use a queue of 1 and submit three distinct
    // jobs back to back; at least one must shed.
    cfg.max_queue = 1;
    cfg.workers = 1;
    let server = Server::start(cfg).expect("server boots");
    let addr = server.addr();

    let mut shed = 0;
    for seed in 10..20 {
        // Five members per job keep the single worker busy long enough
        // for the burst to outrun the 1-slot queue.
        let seeds = [seed, seed + 100, seed + 200, seed + 300, seed + 400];
        let resp = exchange(
            addr,
            Method::Post,
            "/jobs",
            spec_json_with(&seeds, 2_000_000).as_bytes(),
        );
        match resp.status {
            202 => {}
            429 => {
                assert!(
                    resp.header("retry-after").is_some(),
                    "429 carries Retry-After"
                );
                assert!(body_text(&resp).contains("queue full"));
                shed += 1;
            }
            other => panic!("unexpected status {other}: {}", body_text(&resp)),
        }
    }
    assert!(shed > 0, "a 10-deep burst into a 1-slot queue must shed");
    server.drain();
    server.join();
}
