//! Scenario configuration: a deployment plus behaviour, propagation and
//! run parameters.

use nomc_core::DcnConfig;
use nomc_mac::CsmaParams;
use nomc_phy::{AcrCurve, FreeSpace, LogDistance, NoiseFloor, PathLoss, Shadowing};
use nomc_radio::{frame::FrameSpec, RadioConfig};
use nomc_topology::Deployment;
use nomc_units::{Db, Dbm, Meters, SimDuration};

/// Concrete path-loss model choices (enum so scenarios stay `Clone`).
#[derive(Debug, Clone, PartialEq)]
pub enum PathLossModel {
    /// Friis free-space loss.
    FreeSpace(FreeSpace),
    /// Log-distance loss.
    LogDistance(LogDistance),
}

impl nomc_json::ToJson for PathLossModel {
    fn to_json(&self) -> nomc_json::Json {
        let (tag, inner) = match self {
            PathLossModel::FreeSpace(m) => ("FreeSpace", m.to_json()),
            PathLossModel::LogDistance(m) => ("LogDistance", m.to_json()),
        };
        nomc_json::Json::object([(tag, inner)])
    }
}

impl nomc_json::FromJson for PathLossModel {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("PathLossModel: expected object"))?;
        match obj.iter().next() {
            Some(("FreeSpace", inner)) => Ok(PathLossModel::FreeSpace(FromJson::from_json(inner)?)),
            Some(("LogDistance", inner)) => {
                Ok(PathLossModel::LogDistance(FromJson::from_json(inner)?))
            }
            _ => Err(nomc_json::Error::new("PathLossModel: unknown variant")),
        }
    }
}

impl PathLossModel {
    /// Mean attenuation at `distance`.
    pub fn loss(&self, distance: Meters) -> Db {
        match self {
            PathLossModel::FreeSpace(m) => m.loss(distance),
            PathLossModel::LogDistance(m) => m.loss(distance),
        }
    }
}

/// The propagation environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Propagation {
    /// Large-scale path loss.
    pub path_loss: PathLossModel,
    /// Per-packet log-normal shadowing.
    pub shadowing: Shadowing,
    /// Receiver noise floor.
    pub noise: NoiseFloor,
    /// Adjacent-channel rejection curve.
    pub acr: AcrCurve,
}

nomc_json::json_struct!(Propagation {
    path_loss: PathLossModel,
    shadowing: Shadowing,
    noise: NoiseFloor,
    acr: AcrCurve,
});

impl Propagation {
    /// The calibrated testbed-like environment (see DESIGN.md §2).
    pub fn testbed_default() -> Self {
        Propagation {
            path_loss: PathLossModel::LogDistance(LogDistance::indoor_2_4ghz()),
            shadowing: Shadowing::indoor_default(),
            noise: NoiseFloor::cc2420_default(),
            acr: AcrCurve::cc2420_calibrated(),
        }
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation::testbed_default()
    }
}

/// How a network's CCA threshold is driven.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdMode {
    /// Fixed threshold (the ZigBee default design when set to −77 dBm).
    Fixed(Dbm),
    /// The paper's DCN CCA-Adjustor.
    Dcn(DcnConfig),
    /// §VII-C extension: DCN threshold plus a perfect co-channel/
    /// inter-channel classifier at CCA time.
    DcnOracle(DcnConfig),
    /// Fixed threshold with the perfect classifier (ablation).
    FixedOracle(Dbm),
}

impl nomc_json::ToJson for ThresholdMode {
    fn to_json(&self) -> nomc_json::Json {
        let (tag, inner) = match self {
            ThresholdMode::Fixed(t) => ("Fixed", t.to_json()),
            ThresholdMode::Dcn(c) => ("Dcn", c.to_json()),
            ThresholdMode::DcnOracle(c) => ("DcnOracle", c.to_json()),
            ThresholdMode::FixedOracle(t) => ("FixedOracle", t.to_json()),
        };
        nomc_json::Json::object([(tag, inner)])
    }
}

impl nomc_json::FromJson for ThresholdMode {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("ThresholdMode: expected object"))?;
        match obj.iter().next() {
            Some(("Fixed", inner)) => Ok(ThresholdMode::Fixed(FromJson::from_json(inner)?)),
            Some(("Dcn", inner)) => Ok(ThresholdMode::Dcn(FromJson::from_json(inner)?)),
            Some(("DcnOracle", inner)) => Ok(ThresholdMode::DcnOracle(FromJson::from_json(inner)?)),
            Some(("FixedOracle", inner)) => {
                Ok(ThresholdMode::FixedOracle(FromJson::from_json(inner)?))
            }
            _ => Err(nomc_json::Error::new("ThresholdMode: unknown variant")),
        }
    }
}

impl ThresholdMode {
    /// The ZigBee factory default: fixed −77 dBm.
    pub fn zigbee_default() -> Self {
        ThresholdMode::Fixed(Dbm::new(-77.0))
    }

    /// Whether CCA uses the oracle decomposition.
    pub fn is_oracle(&self) -> bool {
        matches!(
            self,
            ThresholdMode::DcnOracle(_) | ThresholdMode::FixedOracle(_)
        )
    }
}

/// Traffic offered to a link's transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficModel {
    /// Always another frame queued (the paper's saturated sources).
    Saturated,
    /// One frame every fixed interval (the §III-B attacker pacing).
    Interval(SimDuration),
    /// Store-and-forward: send one frame per frame delivered on another
    /// link (multi-hop convergecast). `from_link` is a *global* link
    /// index (deployment order, network-major).
    Forward {
        /// The upstream link whose deliveries feed this transmitter.
        from_link: usize,
    },
}

impl nomc_json::ToJson for TrafficModel {
    fn to_json(&self) -> nomc_json::Json {
        use nomc_json::Json;
        match self {
            TrafficModel::Saturated => Json::Str("Saturated".to_string()),
            TrafficModel::Interval(d) => Json::object([("Interval", d.to_json())]),
            TrafficModel::Forward { from_link } => Json::object([(
                "Forward",
                Json::object([("from_link", from_link.to_json())]),
            )]),
        }
    }
}

impl nomc_json::FromJson for TrafficModel {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        if let Some(s) = v.as_str() {
            return match s {
                "Saturated" => Ok(TrafficModel::Saturated),
                other => Err(nomc_json::Error::new(format!(
                    "TrafficModel: unknown variant {other:?}"
                ))),
            };
        }
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("TrafficModel: expected string or object"))?;
        match obj.iter().next() {
            Some(("Interval", inner)) => Ok(TrafficModel::Interval(FromJson::from_json(inner)?)),
            Some(("Forward", inner)) => {
                let from_link = inner.get("from_link").ok_or_else(|| {
                    nomc_json::Error::new("TrafficModel::Forward: missing from_link")
                })?;
                Ok(TrafficModel::Forward {
                    from_link: FromJson::from_json(from_link)?,
                })
            }
            _ => Err(nomc_json::Error::new("TrafficModel: unknown variant")),
        }
    }
}

/// Behaviour of one network's nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBehavior {
    /// CCA threshold source for the network's transmitters.
    pub threshold: ThresholdMode,
    /// CSMA/CA parameters.
    pub mac: CsmaParams,
    /// Offered traffic per link.
    pub traffic: TrafficModel,
}

nomc_json::json_struct!(NetworkBehavior {
    threshold: ThresholdMode,
    mac: CsmaParams,
    traffic: TrafficModel,
});

impl NetworkBehavior {
    /// The default ZigBee design: fixed −77 dBm, standard CSMA, saturated.
    pub fn zigbee_default() -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::zigbee_default(),
            mac: CsmaParams::ieee802154_default(),
            traffic: TrafficModel::Saturated,
        }
    }

    /// The paper's DCN design with default parameters.
    pub fn dcn_default() -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::Dcn(DcnConfig::paper_default()),
            ..NetworkBehavior::zigbee_default()
        }
    }

    /// The §III-B attacker: carrier sense off, fixed-interval pacing.
    pub fn attacker(interval: SimDuration) -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::zigbee_default(),
            mac: CsmaParams::carrier_sense_disabled(),
            traffic: TrafficModel::Interval(interval),
        }
    }
}

impl Default for NetworkBehavior {
    fn default() -> Self {
        NetworkBehavior::zigbee_default()
    }
}

/// A complete, runnable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Node positions, channels and powers.
    pub deployment: Deployment,
    /// Propagation environment.
    pub propagation: Propagation,
    /// Radio hardware profile.
    pub radio: RadioConfig,
    /// Frame geometry.
    pub frame: FrameSpec,
    /// Per-network behaviour (same length/order as
    /// `deployment.networks`).
    pub behaviors: Vec<NetworkBehavior>,
    /// Per-link traffic overrides: `(global link index, model)`. Lets a
    /// multi-hop chain mix source and forwarding links inside one
    /// network.
    pub link_traffic: Vec<(usize, TrafficModel)>,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Initial span excluded from metrics (lets DCN initialize and
    /// queues reach steady state).
    pub warmup: SimDuration,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Record bit-error positions of CRC-failed frames (needed by the
    /// packet-recovery experiments; costs memory).
    pub record_error_positions: bool,
    /// Record a per-transmission timeline (Fig. 3 style).
    pub record_timeline: bool,
    /// Record a full structured event trace (see [`crate::trace`]);
    /// sizeable — one record per CCA and per frame.
    pub record_trace: bool,
    /// Collect per-link [`crate::metrics::ErrorRecord`]s for CRC-failed
    /// frames (on by default). Experiments that never inspect bit-error
    /// profiles can switch this off to keep long sweeps lean; it only
    /// gates collection, never the underlying sampling, so results are
    /// otherwise identical.
    pub record_error_records: bool,
    /// Coupled-power floor above which an overlapping transmission counts
    /// as a "collision" for CPRR purposes.
    pub collision_floor: Dbm,
}

nomc_json::json_struct!(Scenario {
    deployment: Deployment,
    propagation: Propagation,
    radio: RadioConfig,
    frame: FrameSpec,
    behaviors: Vec<NetworkBehavior>,
    link_traffic: Vec<(usize, TrafficModel)> = Vec::new(),
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
    record_error_positions: bool,
    record_timeline: bool,
    record_trace: bool = false,
    record_error_records: bool = true,
    collision_floor: Dbm,
});

impl Scenario {
    /// Starts building a scenario over `deployment`.
    pub fn builder(deployment: Deployment) -> ScenarioBuilder {
        ScenarioBuilder::new(deployment)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    deployment: Deployment,
    propagation: Propagation,
    radio: RadioConfig,
    frame: FrameSpec,
    behaviors: Vec<NetworkBehavior>,
    link_traffic: Vec<(usize, TrafficModel)>,
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
    record_error_positions: bool,
    record_timeline: bool,
    record_trace: bool,
    record_error_records: bool,
    collision_floor: Dbm,
}

impl ScenarioBuilder {
    /// Creates a builder with calibrated defaults: ZigBee behaviour on
    /// every network, 20 s duration, 3 s warmup, seed 1.
    pub fn new(deployment: Deployment) -> Self {
        let n = deployment.networks.len();
        ScenarioBuilder {
            deployment,
            propagation: Propagation::testbed_default(),
            radio: RadioConfig::cc2420(),
            frame: FrameSpec::default_data_frame(),
            behaviors: vec![NetworkBehavior::zigbee_default(); n],
            link_traffic: Vec::new(),
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(3),
            seed: 1,
            record_error_positions: false,
            record_timeline: false,
            record_trace: false,
            record_error_records: true,
            collision_floor: Dbm::new(-100.0),
        }
    }

    /// Sets the behaviour of every network.
    pub fn behavior_all(&mut self, behavior: NetworkBehavior) -> &mut Self {
        for b in &mut self.behaviors {
            *b = behavior.clone();
        }
        self
    }

    /// Sets the behaviour of network `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn behavior(&mut self, index: usize, behavior: NetworkBehavior) -> &mut Self {
        self.behaviors[index] = behavior;
        self
    }

    /// Overrides the traffic model of one link (by global link index).
    ///
    /// # Panics
    ///
    /// Panics if `global_link` is out of range.
    pub fn link_traffic(&mut self, global_link: usize, traffic: TrafficModel) -> &mut Self {
        assert!(
            global_link < self.deployment.link_count(),
            "link {global_link} out of range"
        );
        self.link_traffic.push((global_link, traffic));
        self
    }

    /// Sets the propagation environment.
    pub fn propagation(&mut self, p: Propagation) -> &mut Self {
        self.propagation = p;
        self
    }

    /// Sets the radio profile.
    pub fn radio(&mut self, r: RadioConfig) -> &mut Self {
        self.radio = r;
        self
    }

    /// Sets the frame geometry.
    pub fn frame(&mut self, f: FrameSpec) -> &mut Self {
        self.frame = f;
        self
    }

    /// Sets total simulated time.
    pub fn duration(&mut self, d: SimDuration) -> &mut Self {
        self.duration = d;
        self
    }

    /// Sets the measurement warmup.
    pub fn warmup(&mut self, w: SimDuration) -> &mut Self {
        self.warmup = w;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.seed = s;
        self
    }

    /// Enables bit-error position recording.
    pub fn record_error_positions(&mut self, on: bool) -> &mut Self {
        self.record_error_positions = on;
        self
    }

    /// Enables the transmission timeline.
    pub fn record_timeline(&mut self, on: bool) -> &mut Self {
        self.record_timeline = on;
        self
    }

    /// Enables the structured event trace.
    pub fn record_trace(&mut self, on: bool) -> &mut Self {
        self.record_trace = on;
        self
    }

    /// Enables or disables collection of per-link bit-error records
    /// (on by default).
    pub fn record_error_records(&mut self, on: bool) -> &mut Self {
        self.record_error_records = on;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns a message if the deployment is invalid, the warmup is not
    /// shorter than the duration, or a MAC parameter set is inconsistent.
    pub fn build(&self) -> Result<Scenario, String> {
        self.deployment.validate()?;
        if self.warmup >= self.duration {
            return Err(format!(
                "warmup ({}) must be shorter than duration ({})",
                self.warmup, self.duration
            ));
        }
        for (i, b) in self.behaviors.iter().enumerate() {
            b.mac.validate().map_err(|e| format!("network {i}: {e}"))?;
            if let ThresholdMode::Dcn(cfg) | ThresholdMode::DcnOracle(cfg) = &b.threshold {
                cfg.validate().map_err(|e| format!("network {i}: {e}"))?;
            }
        }
        let links = self.deployment.link_count();
        for &(link, traffic) in &self.link_traffic {
            if link >= links {
                return Err(format!("traffic override for unknown link {link}"));
            }
            if let TrafficModel::Forward { from_link } = traffic {
                if from_link >= links {
                    return Err(format!(
                        "link {link} forwards from unknown link {from_link}"
                    ));
                }
                if from_link == link {
                    return Err(format!("link {link} cannot forward from itself"));
                }
            }
        }
        Ok(Scenario {
            deployment: self.deployment.clone(),
            propagation: self.propagation.clone(),
            radio: self.radio.clone(),
            frame: self.frame,
            behaviors: self.behaviors.clone(),
            link_traffic: self.link_traffic.clone(),
            duration: self.duration,
            warmup: self.warmup,
            seed: self.seed,
            record_error_positions: self.record_error_positions,
            record_timeline: self.record_timeline,
            record_trace: self.record_trace,
            record_error_records: self.record_error_records,
            collision_floor: self.collision_floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::paper;
    use nomc_topology::spectrum::ChannelPlan;
    use nomc_units::Megahertz;

    fn deployment() -> Deployment {
        let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 3);
        paper::line_deployment(&plan, Dbm::new(0.0))
    }

    #[test]
    fn builder_defaults_build() {
        let s = Scenario::builder(deployment()).build().unwrap();
        assert_eq!(s.behaviors.len(), 3);
        assert_eq!(s.duration, SimDuration::from_secs(20));
        assert!(matches!(s.behaviors[0].threshold, ThresholdMode::Fixed(_)));
    }

    #[test]
    fn behavior_overrides() {
        let mut b = Scenario::builder(deployment());
        b.behavior_all(NetworkBehavior::dcn_default());
        b.behavior(1, NetworkBehavior::attacker(SimDuration::from_millis(3)));
        let s = b.build().unwrap();
        assert!(matches!(s.behaviors[0].threshold, ThresholdMode::Dcn(_)));
        assert!(matches!(s.behaviors[1].traffic, TrafficModel::Interval(_)));
        assert!(!s.behaviors[1].mac.carrier_sense);
    }

    #[test]
    fn warmup_must_be_shorter_than_duration() {
        let mut b = Scenario::builder(deployment());
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(2));
        assert!(b.build().is_err());
    }

    #[test]
    fn invalid_mac_rejected() {
        let mut b = Scenario::builder(deployment());
        let mut bad = NetworkBehavior::zigbee_default();
        bad.mac.min_be = 7;
        b.behavior(2, bad);
        let err = b.build().unwrap_err();
        assert!(err.contains("network 2"), "{err}");
    }

    #[test]
    fn oracle_detection() {
        assert!(ThresholdMode::FixedOracle(Dbm::new(-77.0)).is_oracle());
        assert!(ThresholdMode::DcnOracle(DcnConfig::default()).is_oracle());
        assert!(!ThresholdMode::zigbee_default().is_oracle());
    }
}
