//! Scenario configuration: a deployment plus behaviour, propagation and
//! run parameters.

use nomc_core::DcnConfig;
use nomc_mac::CsmaParams;
use nomc_phy::{AcrCurve, FreeSpace, LogDistance, NoiseFloor, PathLoss, Shadowing};
use nomc_radio::{frame::FrameSpec, RadioConfig};
use nomc_topology::Deployment;
use nomc_units::{Db, Dbm, Megahertz, Meters, SimDuration, SimTime};

/// Why a [`Scenario`] failed validation.
///
/// Every malformed-input path — builder misuse, hand-edited JSON, a
/// fault plan referencing nodes that do not exist — surfaces as one of
/// these variants instead of a panic, so the CLI can exit with a
/// message and callers can match on the cause.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The deployment failed its own validation.
    Deployment(String),
    /// The warmup does not leave any measured time.
    Warmup {
        /// Configured warmup.
        warmup: SimDuration,
        /// Configured total duration.
        duration: SimDuration,
    },
    /// `behaviors` does not line up with `deployment.networks` (possible
    /// only for hand-edited JSON; the builder keeps them in sync).
    BehaviorCount {
        /// Number of behavior entries.
        behaviors: usize,
        /// Number of deployed networks.
        networks: usize,
    },
    /// A behavior was addressed to a network the deployment lacks.
    UnknownNetwork {
        /// The requested network index.
        index: usize,
        /// How many networks the deployment has.
        count: usize,
    },
    /// A network's MAC or DCN parameters are inconsistent.
    Network {
        /// The offending network.
        index: usize,
        /// The underlying validation message.
        reason: String,
    },
    /// A traffic override names a link the deployment lacks.
    UnknownLink {
        /// The requested global link index.
        link: usize,
        /// How many links the deployment has.
        count: usize,
    },
    /// A forwarding link's upstream does not exist.
    ForwardFromUnknown {
        /// The forwarding link.
        link: usize,
        /// Its (missing) upstream link.
        from_link: usize,
        /// How many links the deployment has.
        count: usize,
    },
    /// A forwarding link names itself as its upstream.
    SelfForward {
        /// The offending link.
        link: usize,
    },
    /// An entry in the fault plan is malformed.
    Fault {
        /// Which fault family (`"crash"`, `"jammer"`, ...).
        kind: &'static str,
        /// Index within that family's list.
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Deployment(e) => write!(f, "invalid deployment: {e}"),
            ScenarioError::Warmup { warmup, duration } => write!(
                f,
                "warmup ({warmup}) must be shorter than duration ({duration})"
            ),
            ScenarioError::BehaviorCount {
                behaviors,
                networks,
            } => write!(
                f,
                "{behaviors} behavior entries for {networks} deployed networks"
            ),
            ScenarioError::UnknownNetwork { index, count } => write!(
                f,
                "behavior for unknown network {index} (deployment has {count})"
            ),
            ScenarioError::Network { index, reason } => write!(f, "network {index}: {reason}"),
            ScenarioError::UnknownLink { link, count } => write!(
                f,
                "traffic override for unknown link {link} (deployment has {count})"
            ),
            ScenarioError::ForwardFromUnknown {
                link,
                from_link,
                count,
            } => write!(
                f,
                "link {link} forwards from unknown link {from_link} (deployment has {count})"
            ),
            ScenarioError::SelfForward { link } => {
                write!(f, "link {link} cannot forward from itself")
            }
            ScenarioError::Fault {
                kind,
                index,
                reason,
            } => write!(f, "{kind} fault #{index}: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ScenarioError> for String {
    fn from(e: ScenarioError) -> String {
        e.to_string()
    }
}

/// Concrete path-loss model choices (enum so scenarios stay `Clone`).
#[derive(Debug, Clone, PartialEq)]
pub enum PathLossModel {
    /// Friis free-space loss.
    FreeSpace(FreeSpace),
    /// Log-distance loss.
    LogDistance(LogDistance),
}

impl nomc_json::ToJson for PathLossModel {
    fn to_json(&self) -> nomc_json::Json {
        let (tag, inner) = match self {
            PathLossModel::FreeSpace(m) => ("FreeSpace", m.to_json()),
            PathLossModel::LogDistance(m) => ("LogDistance", m.to_json()),
        };
        nomc_json::Json::object([(tag, inner)])
    }
}

impl nomc_json::FromJson for PathLossModel {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("PathLossModel: expected object"))?;
        match obj.iter().next() {
            Some(("FreeSpace", inner)) => Ok(PathLossModel::FreeSpace(FromJson::from_json(inner)?)),
            Some(("LogDistance", inner)) => {
                Ok(PathLossModel::LogDistance(FromJson::from_json(inner)?))
            }
            _ => Err(nomc_json::Error::new("PathLossModel: unknown variant")),
        }
    }
}

impl PathLossModel {
    /// Mean attenuation at `distance`.
    pub fn loss(&self, distance: Meters) -> Db {
        match self {
            PathLossModel::FreeSpace(m) => m.loss(distance),
            PathLossModel::LogDistance(m) => m.loss(distance),
        }
    }
}

/// The propagation environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Propagation {
    /// Large-scale path loss.
    pub path_loss: PathLossModel,
    /// Per-packet log-normal shadowing.
    pub shadowing: Shadowing,
    /// Receiver noise floor.
    pub noise: NoiseFloor,
    /// Adjacent-channel rejection curve.
    pub acr: AcrCurve,
}

nomc_json::json_struct!(Propagation {
    path_loss: PathLossModel,
    shadowing: Shadowing,
    noise: NoiseFloor,
    acr: AcrCurve,
});

impl Propagation {
    /// The calibrated testbed-like environment (see DESIGN.md §2).
    pub fn testbed_default() -> Self {
        Propagation {
            path_loss: PathLossModel::LogDistance(LogDistance::indoor_2_4ghz()),
            shadowing: Shadowing::indoor_default(),
            noise: NoiseFloor::cc2420_default(),
            acr: AcrCurve::cc2420_calibrated(),
        }
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation::testbed_default()
    }
}

/// How a network's CCA threshold is driven.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdMode {
    /// Fixed threshold (the ZigBee default design when set to −77 dBm).
    Fixed(Dbm),
    /// The paper's DCN CCA-Adjustor.
    Dcn(DcnConfig),
    /// §VII-C extension: DCN threshold plus a perfect co-channel/
    /// inter-channel classifier at CCA time.
    DcnOracle(DcnConfig),
    /// Fixed threshold with the perfect classifier (ablation).
    FixedOracle(Dbm),
}

impl nomc_json::ToJson for ThresholdMode {
    fn to_json(&self) -> nomc_json::Json {
        let (tag, inner) = match self {
            ThresholdMode::Fixed(t) => ("Fixed", t.to_json()),
            ThresholdMode::Dcn(c) => ("Dcn", c.to_json()),
            ThresholdMode::DcnOracle(c) => ("DcnOracle", c.to_json()),
            ThresholdMode::FixedOracle(t) => ("FixedOracle", t.to_json()),
        };
        nomc_json::Json::object([(tag, inner)])
    }
}

impl nomc_json::FromJson for ThresholdMode {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("ThresholdMode: expected object"))?;
        match obj.iter().next() {
            Some(("Fixed", inner)) => Ok(ThresholdMode::Fixed(FromJson::from_json(inner)?)),
            Some(("Dcn", inner)) => Ok(ThresholdMode::Dcn(FromJson::from_json(inner)?)),
            Some(("DcnOracle", inner)) => Ok(ThresholdMode::DcnOracle(FromJson::from_json(inner)?)),
            Some(("FixedOracle", inner)) => {
                Ok(ThresholdMode::FixedOracle(FromJson::from_json(inner)?))
            }
            _ => Err(nomc_json::Error::new("ThresholdMode: unknown variant")),
        }
    }
}

impl ThresholdMode {
    /// The ZigBee factory default: fixed −77 dBm.
    pub fn zigbee_default() -> Self {
        ThresholdMode::Fixed(Dbm::new(-77.0))
    }

    /// Whether CCA uses the oracle decomposition.
    pub fn is_oracle(&self) -> bool {
        matches!(
            self,
            ThresholdMode::DcnOracle(_) | ThresholdMode::FixedOracle(_)
        )
    }
}

/// Traffic offered to a link's transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficModel {
    /// Always another frame queued (the paper's saturated sources).
    Saturated,
    /// One frame every fixed interval (the §III-B attacker pacing).
    Interval(SimDuration),
    /// Store-and-forward: send one frame per frame delivered on another
    /// link (multi-hop convergecast). `from_link` is a *global* link
    /// index (deployment order, network-major).
    Forward {
        /// The upstream link whose deliveries feed this transmitter.
        from_link: usize,
    },
}

impl nomc_json::ToJson for TrafficModel {
    fn to_json(&self) -> nomc_json::Json {
        use nomc_json::Json;
        match self {
            TrafficModel::Saturated => Json::Str("Saturated".to_string()),
            TrafficModel::Interval(d) => Json::object([("Interval", d.to_json())]),
            TrafficModel::Forward { from_link } => Json::object([(
                "Forward",
                Json::object([("from_link", from_link.to_json())]),
            )]),
        }
    }
}

impl nomc_json::FromJson for TrafficModel {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        if let Some(s) = v.as_str() {
            return match s {
                "Saturated" => Ok(TrafficModel::Saturated),
                other => Err(nomc_json::Error::new(format!(
                    "TrafficModel: unknown variant {other:?}"
                ))),
            };
        }
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("TrafficModel: expected string or object"))?;
        match obj.iter().next() {
            Some(("Interval", inner)) => Ok(TrafficModel::Interval(FromJson::from_json(inner)?)),
            Some(("Forward", inner)) => {
                let from_link = inner.get("from_link").ok_or_else(|| {
                    nomc_json::Error::new("TrafficModel::Forward: missing from_link")
                })?;
                Ok(TrafficModel::Forward {
                    from_link: FromJson::from_json(from_link)?,
                })
            }
            _ => Err(nomc_json::Error::new("TrafficModel: unknown variant")),
        }
    }
}

/// Behaviour of one network's nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBehavior {
    /// CCA threshold source for the network's transmitters.
    pub threshold: ThresholdMode,
    /// CSMA/CA parameters.
    pub mac: CsmaParams,
    /// Offered traffic per link.
    pub traffic: TrafficModel,
}

nomc_json::json_struct!(NetworkBehavior {
    threshold: ThresholdMode,
    mac: CsmaParams,
    traffic: TrafficModel,
});

impl NetworkBehavior {
    /// The default ZigBee design: fixed −77 dBm, standard CSMA, saturated.
    pub fn zigbee_default() -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::zigbee_default(),
            mac: CsmaParams::ieee802154_default(),
            traffic: TrafficModel::Saturated,
        }
    }

    /// The paper's DCN design with default parameters.
    pub fn dcn_default() -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::Dcn(DcnConfig::paper_default()),
            ..NetworkBehavior::zigbee_default()
        }
    }

    /// The §III-B attacker: carrier sense off, fixed-interval pacing.
    pub fn attacker(interval: SimDuration) -> Self {
        NetworkBehavior {
            threshold: ThresholdMode::zigbee_default(),
            mac: CsmaParams::carrier_sense_disabled(),
            traffic: TrafficModel::Interval(interval),
        }
    }
}

impl Default for NetworkBehavior {
    fn default() -> Self {
        NetworkBehavior::zigbee_default()
    }
}

/// A node crash, optionally followed by a reboot.
///
/// While down the node neither transmits, senses, nor receives; its
/// queued MAC state is inert. On reboot the node comes back with a
/// factory-fresh MAC engine and — for DCN senders — a CCA-Adjustor
/// re-entering the initializing phase, exactly as a power-cycled mote
/// would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// Global node index (deployment order: sender `2·link`,
    /// receiver `2·link + 1`).
    pub node: usize,
    /// Instant the node dies.
    pub at: SimTime,
    /// How long it stays down; `ZERO` means it never reboots.
    pub down_for: SimDuration,
}

nomc_json::json_struct!(CrashFault {
    node: usize,
    at: SimTime,
    down_for: SimDuration,
});

/// A transient wideband jammer: unregistered energy injected into the
/// medium on one centre frequency for a bounded window.
///
/// The jammer is not a node — it occupies no slot in the deployment,
/// answers no CCA, and its energy reaches every receiver at the same
/// flat coupled power (a worst-case, geometry-free interferer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammerFault {
    /// Centre frequency the jammer occupies.
    pub frequency: Megahertz,
    /// Coupled power seen at every node on the jammer's channel.
    pub power: Dbm,
    /// Instant the jammer keys up.
    pub at: SimTime,
    /// How long it transmits.
    pub duration: SimDuration,
}

nomc_json::json_struct!(JammerFault {
    frequency: Megahertz,
    power: Dbm,
    at: SimTime,
    duration: SimDuration,
});

/// Per-node RSSI calibration drift: a dB offset that ramps linearly
/// from zero to `peak` over `ramp`, then holds for the rest of the run.
///
/// The drift corrupts every RSSI the node *reads* (CCA comparisons,
/// power sensing, decoded-packet strength) without changing the energy
/// physically on the air — miscalibration, not propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftFault {
    /// Global node index whose radio drifts.
    pub node: usize,
    /// Instant the ramp starts.
    pub at: SimTime,
    /// Ramp length; `ZERO` applies the full `peak` as a step.
    pub ramp: SimDuration,
    /// Final offset added to every RSSI reading (may be negative).
    pub peak: Db,
}

nomc_json::json_struct!(DriftFault {
    node: usize,
    at: SimTime,
    ramp: SimDuration,
    peak: Db,
});

/// A stuck-CCA window: the node's clear-channel assessment reports
/// *busy* regardless of the medium (a latched comparator / front-end
/// fault), starving its transmitter until the window ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckCcaFault {
    /// Global node index whose CCA latches busy.
    pub node: usize,
    /// Instant the fault latches.
    pub at: SimTime,
    /// How long CCA stays busy.
    pub duration: SimDuration,
}

nomc_json::json_struct!(StuckCcaFault {
    node: usize,
    at: SimTime,
    duration: SimDuration,
});

/// A deterministic schedule of injected faults.
///
/// The plan is part of the [`Scenario`], so it serializes with it and
/// is covered by the same seed-stability guarantee: the schedule is
/// expanded into ordinary queue events at bootstrap, consumes no
/// randomness, and an empty plan leaves the event stream bit-identical
/// to a fault-free run. See DESIGN.md §10 for the fault taxonomy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Node crash / reboot cycles.
    pub crashes: Vec<CrashFault>,
    /// Transient wideband jammers.
    pub jammers: Vec<JammerFault>,
    /// RSSI calibration drifts.
    pub drifts: Vec<DriftFault>,
    /// Stuck-busy CCA windows.
    pub stuck_cca: Vec<StuckCcaFault>,
}

nomc_json::json_struct!(FaultPlan {
    crashes: Vec<CrashFault> = Vec::new(),
    jammers: Vec<JammerFault> = Vec::new(),
    drifts: Vec<DriftFault> = Vec::new(),
    stuck_cca: Vec<StuckCcaFault> = Vec::new(),
});

impl FaultPlan {
    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.jammers.is_empty()
            && self.drifts.is_empty()
            && self.stuck_cca.is_empty()
    }

    /// Validates the plan against a deployment of `nodes` nodes.
    fn validate(&self, nodes: usize) -> Result<(), ScenarioError> {
        let node_in_range = |kind, index, node| {
            if node >= nodes {
                Err(ScenarioError::Fault {
                    kind,
                    index,
                    reason: format!("node {node} out of range (deployment has {nodes})"),
                })
            } else {
                Ok(())
            }
        };
        for (i, c) in self.crashes.iter().enumerate() {
            node_in_range("crash", i, c.node)?;
        }
        for (i, j) in self.jammers.iter().enumerate() {
            if j.duration.is_zero() {
                return Err(ScenarioError::Fault {
                    kind: "jammer",
                    index: i,
                    reason: "duration must be positive".into(),
                });
            }
            if !j.power.value().is_finite() {
                return Err(ScenarioError::Fault {
                    kind: "jammer",
                    index: i,
                    reason: format!("power ({}) must be finite", j.power),
                });
            }
        }
        for (i, d) in self.drifts.iter().enumerate() {
            node_in_range("drift", i, d.node)?;
            if !d.peak.value().is_finite() {
                return Err(ScenarioError::Fault {
                    kind: "drift",
                    index: i,
                    reason: format!("peak ({}) must be finite", d.peak),
                });
            }
        }
        for (i, s) in self.stuck_cca.iter().enumerate() {
            node_in_range("stuck-CCA", i, s.node)?;
            if s.duration.is_zero() {
                return Err(ScenarioError::Fault {
                    kind: "stuck-CCA",
                    index: i,
                    reason: "duration must be positive".into(),
                });
            }
        }
        Ok(())
    }
}

/// A complete, runnable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Node positions, channels and powers.
    pub deployment: Deployment,
    /// Propagation environment.
    pub propagation: Propagation,
    /// Radio hardware profile.
    pub radio: RadioConfig,
    /// Frame geometry.
    pub frame: FrameSpec,
    /// Per-network behaviour (same length/order as
    /// `deployment.networks`).
    pub behaviors: Vec<NetworkBehavior>,
    /// Per-link traffic overrides: `(global link index, model)`. Lets a
    /// multi-hop chain mix source and forwarding links inside one
    /// network.
    pub link_traffic: Vec<(usize, TrafficModel)>,
    /// Deterministic fault schedule (empty by default — and an empty
    /// plan is guaranteed not to perturb the run).
    pub faults: FaultPlan,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Initial span excluded from metrics (lets DCN initialize and
    /// queues reach steady state).
    pub warmup: SimDuration,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Record bit-error positions of CRC-failed frames (needed by the
    /// packet-recovery experiments; costs memory).
    pub record_error_positions: bool,
    /// Record a per-transmission timeline (Fig. 3 style).
    pub record_timeline: bool,
    /// Record a full structured event trace (see [`crate::trace`]);
    /// sizeable — one record per CCA and per frame.
    pub record_trace: bool,
    /// Collect per-link [`crate::metrics::ErrorRecord`]s for CRC-failed
    /// frames (on by default). Experiments that never inspect bit-error
    /// profiles can switch this off to keep long sweeps lean; it only
    /// gates collection, never the underlying sampling, so results are
    /// otherwise identical.
    pub record_error_records: bool,
    /// Coupled-power floor above which an overlapping transmission counts
    /// as a "collision" for CPRR purposes.
    pub collision_floor: Dbm,
}

nomc_json::json_struct!(Scenario {
    deployment: Deployment,
    propagation: Propagation,
    radio: RadioConfig,
    frame: FrameSpec,
    behaviors: Vec<NetworkBehavior>,
    link_traffic: Vec<(usize, TrafficModel)> = Vec::new(),
    faults: FaultPlan = FaultPlan::default(),
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
    record_error_positions: bool,
    record_timeline: bool,
    record_trace: bool = false,
    record_error_records: bool = true,
    collision_floor: Dbm,
});

impl Scenario {
    /// Starts building a scenario over `deployment`.
    pub fn builder(deployment: Deployment) -> ScenarioBuilder {
        ScenarioBuilder::new(deployment)
    }

    /// Validates the assembled scenario.
    ///
    /// [`ScenarioBuilder::build`] runs this automatically; call it
    /// directly on scenarios parsed from JSON before handing them to
    /// the engine, so malformed input is reported instead of panicking
    /// mid-run.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.deployment
            .validate()
            .map_err(ScenarioError::Deployment)?;
        if self.warmup >= self.duration {
            return Err(ScenarioError::Warmup {
                warmup: self.warmup,
                duration: self.duration,
            });
        }
        if self.behaviors.len() != self.deployment.networks.len() {
            return Err(ScenarioError::BehaviorCount {
                behaviors: self.behaviors.len(),
                networks: self.deployment.networks.len(),
            });
        }
        for (i, b) in self.behaviors.iter().enumerate() {
            b.mac.validate().map_err(|e| ScenarioError::Network {
                index: i,
                reason: e,
            })?;
            if let ThresholdMode::Dcn(cfg) | ThresholdMode::DcnOracle(cfg) = &b.threshold {
                cfg.validate().map_err(|e| ScenarioError::Network {
                    index: i,
                    reason: e,
                })?;
            }
        }
        let links = self.deployment.link_count();
        for &(link, traffic) in &self.link_traffic {
            if link >= links {
                return Err(ScenarioError::UnknownLink { link, count: links });
            }
            if let TrafficModel::Forward { from_link } = traffic {
                if from_link >= links {
                    return Err(ScenarioError::ForwardFromUnknown {
                        link,
                        from_link,
                        count: links,
                    });
                }
                if from_link == link {
                    return Err(ScenarioError::SelfForward { link });
                }
            }
        }
        self.faults.validate(self.deployment.node_count())
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    deployment: Deployment,
    propagation: Propagation,
    radio: RadioConfig,
    frame: FrameSpec,
    behaviors: Vec<NetworkBehavior>,
    link_traffic: Vec<(usize, TrafficModel)>,
    faults: FaultPlan,
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
    record_error_positions: bool,
    record_timeline: bool,
    record_trace: bool,
    record_error_records: bool,
    collision_floor: Dbm,
    /// First builder-misuse error, reported by [`ScenarioBuilder::build`]
    /// instead of panicking at the call site.
    invalid: Option<ScenarioError>,
}

impl ScenarioBuilder {
    /// Creates a builder with calibrated defaults: ZigBee behaviour on
    /// every network, 20 s duration, 3 s warmup, seed 1.
    pub fn new(deployment: Deployment) -> Self {
        let n = deployment.networks.len();
        ScenarioBuilder {
            deployment,
            propagation: Propagation::testbed_default(),
            radio: RadioConfig::cc2420(),
            frame: FrameSpec::default_data_frame(),
            behaviors: vec![NetworkBehavior::zigbee_default(); n],
            link_traffic: Vec::new(),
            faults: FaultPlan::default(),
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(3),
            seed: 1,
            record_error_positions: false,
            record_timeline: false,
            record_trace: false,
            record_error_records: true,
            collision_floor: Dbm::new(-100.0),
            invalid: None,
        }
    }

    /// Sets the behaviour of every network.
    pub fn behavior_all(&mut self, behavior: NetworkBehavior) -> &mut Self {
        for b in &mut self.behaviors {
            *b = behavior.clone();
        }
        self
    }

    /// Sets the behaviour of network `index`.
    ///
    /// An out-of-range `index` is not applied; it is reported as a
    /// [`ScenarioError::UnknownNetwork`] by [`ScenarioBuilder::build`].
    pub fn behavior(&mut self, index: usize, behavior: NetworkBehavior) -> &mut Self {
        match self.behaviors.get_mut(index) {
            Some(slot) => *slot = behavior,
            None => {
                self.invalid.get_or_insert(ScenarioError::UnknownNetwork {
                    index,
                    count: self.behaviors.len(),
                });
            }
        }
        self
    }

    /// Overrides the traffic model of one link (by global link index).
    ///
    /// Out-of-range links are reported by [`ScenarioBuilder::build`].
    pub fn link_traffic(&mut self, global_link: usize, traffic: TrafficModel) -> &mut Self {
        self.link_traffic.push((global_link, traffic));
        self
    }

    /// Installs a fault schedule (see [`FaultPlan`]).
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = plan;
        self
    }

    /// Sets the propagation environment.
    pub fn propagation(&mut self, p: Propagation) -> &mut Self {
        self.propagation = p;
        self
    }

    /// Sets the radio profile.
    pub fn radio(&mut self, r: RadioConfig) -> &mut Self {
        self.radio = r;
        self
    }

    /// Sets the frame geometry.
    pub fn frame(&mut self, f: FrameSpec) -> &mut Self {
        self.frame = f;
        self
    }

    /// Sets total simulated time.
    pub fn duration(&mut self, d: SimDuration) -> &mut Self {
        self.duration = d;
        self
    }

    /// Sets the measurement warmup.
    pub fn warmup(&mut self, w: SimDuration) -> &mut Self {
        self.warmup = w;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.seed = s;
        self
    }

    /// Enables bit-error position recording.
    pub fn record_error_positions(&mut self, on: bool) -> &mut Self {
        self.record_error_positions = on;
        self
    }

    /// Enables the transmission timeline.
    pub fn record_timeline(&mut self, on: bool) -> &mut Self {
        self.record_timeline = on;
        self
    }

    /// Enables the structured event trace.
    pub fn record_trace(&mut self, on: bool) -> &mut Self {
        self.record_trace = on;
        self
    }

    /// Enables or disables collection of per-link bit-error records
    /// (on by default).
    pub fn record_error_records(&mut self, on: bool) -> &mut Self {
        self.record_error_records = on;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`]: deferred builder misuse
    /// (out-of-range `behavior` index), an invalid deployment, a warmup
    /// not shorter than the duration, inconsistent MAC/DCN parameters,
    /// bad traffic overrides, or a malformed fault plan.
    pub fn build(&self) -> Result<Scenario, ScenarioError> {
        if let Some(e) = &self.invalid {
            return Err(e.clone());
        }
        let scenario = Scenario {
            deployment: self.deployment.clone(),
            propagation: self.propagation.clone(),
            radio: self.radio.clone(),
            frame: self.frame,
            behaviors: self.behaviors.clone(),
            link_traffic: self.link_traffic.clone(),
            faults: self.faults.clone(),
            duration: self.duration,
            warmup: self.warmup,
            seed: self.seed,
            record_error_positions: self.record_error_positions,
            record_timeline: self.record_timeline,
            record_trace: self.record_trace,
            record_error_records: self.record_error_records,
            collision_floor: self.collision_floor,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::paper;
    use nomc_topology::spectrum::ChannelPlan;
    use nomc_units::Megahertz;

    fn deployment() -> Deployment {
        let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 3);
        paper::line_deployment(&plan, Dbm::new(0.0))
    }

    #[test]
    fn builder_defaults_build() {
        let s = Scenario::builder(deployment()).build().unwrap();
        assert_eq!(s.behaviors.len(), 3);
        assert_eq!(s.duration, SimDuration::from_secs(20));
        assert!(matches!(s.behaviors[0].threshold, ThresholdMode::Fixed(_)));
    }

    #[test]
    fn behavior_overrides() {
        let mut b = Scenario::builder(deployment());
        b.behavior_all(NetworkBehavior::dcn_default());
        b.behavior(1, NetworkBehavior::attacker(SimDuration::from_millis(3)));
        let s = b.build().unwrap();
        assert!(matches!(s.behaviors[0].threshold, ThresholdMode::Dcn(_)));
        assert!(matches!(s.behaviors[1].traffic, TrafficModel::Interval(_)));
        assert!(!s.behaviors[1].mac.carrier_sense);
    }

    #[test]
    fn warmup_must_be_shorter_than_duration() {
        let mut b = Scenario::builder(deployment());
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(2));
        assert!(b.build().is_err());
    }

    #[test]
    fn invalid_mac_rejected() {
        let mut b = Scenario::builder(deployment());
        let mut bad = NetworkBehavior::zigbee_default();
        bad.mac.min_be = 7;
        b.behavior(2, bad);
        let err = b.build().unwrap_err();
        assert!(
            matches!(err, ScenarioError::Network { index: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("network 2"), "{err}");
    }

    #[test]
    fn out_of_range_behavior_is_an_error_not_a_panic() {
        let mut b = Scenario::builder(deployment());
        b.behavior(9, NetworkBehavior::dcn_default());
        let err = b.build().unwrap_err();
        assert_eq!(err, ScenarioError::UnknownNetwork { index: 9, count: 3 });
    }

    #[test]
    fn out_of_range_link_traffic_is_an_error_not_a_panic() {
        let mut b = Scenario::builder(deployment());
        b.link_traffic(99, TrafficModel::Saturated);
        let err = b.build().unwrap_err();
        assert_eq!(err, ScenarioError::UnknownLink { link: 99, count: 6 });
    }

    #[test]
    fn fault_plan_defaults_to_empty_and_round_trips() {
        let s = Scenario::builder(deployment()).build().unwrap();
        assert!(s.faults.is_empty());
        // A serialized pre-fault-era scenario (no "faults" key) parses.
        use nomc_json::{FromJson, ToJson};
        let mut v = s.to_json();
        assert!(v
            .as_object_mut()
            .expect("scenario serializes to an object")
            .remove("faults")
            .is_some());
        let legacy = Scenario::from_json(&v).expect("legacy JSON parses");
        assert_eq!(legacy, s);
    }

    #[test]
    fn fault_plan_round_trips_with_entries() {
        let mut b = Scenario::builder(deployment());
        b.faults(FaultPlan {
            crashes: vec![CrashFault {
                node: 0,
                at: SimTime::from_secs(5),
                down_for: SimDuration::from_secs(2),
            }],
            jammers: vec![JammerFault {
                frequency: Megahertz::new(2458.0),
                power: Dbm::new(-45.0),
                at: SimTime::from_secs(4),
                duration: SimDuration::from_millis(500),
            }],
            drifts: vec![DriftFault {
                node: 2,
                at: SimTime::from_secs(6),
                ramp: SimDuration::from_secs(3),
                peak: Db::new(-6.0),
            }],
            stuck_cca: vec![StuckCcaFault {
                node: 4,
                at: SimTime::from_secs(7),
                duration: SimDuration::from_secs(1),
            }],
        });
        let s = b.build().unwrap();
        assert!(!s.faults.is_empty());
        let json = nomc_json::to_string(&s);
        let back: Scenario = nomc_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn fault_plan_validation() {
        // Crash on a node the deployment lacks (3 nets × 2 links = 12 nodes).
        let mut b = Scenario::builder(deployment());
        b.faults(FaultPlan {
            crashes: vec![CrashFault {
                node: 12,
                at: SimTime::from_secs(1),
                down_for: SimDuration::ZERO,
            }],
            ..FaultPlan::default()
        });
        let err = b.build().unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::Fault {
                    kind: "crash",
                    index: 0,
                    ..
                }
            ),
            "{err}"
        );

        // Zero-length jammer burst.
        let mut b = Scenario::builder(deployment());
        b.faults(FaultPlan {
            jammers: vec![JammerFault {
                frequency: Megahertz::new(2458.0),
                power: Dbm::new(-40.0),
                at: SimTime::from_secs(1),
                duration: SimDuration::ZERO,
            }],
            ..FaultPlan::default()
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ScenarioError::Fault { kind: "jammer", .. }
        ));

        // Non-finite drift peak.
        let mut b = Scenario::builder(deployment());
        b.faults(FaultPlan {
            drifts: vec![DriftFault {
                node: 0,
                at: SimTime::from_secs(1),
                ramp: SimDuration::ZERO,
                peak: Db::new(f64::NAN),
            }],
            ..FaultPlan::default()
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ScenarioError::Fault { kind: "drift", .. }
        ));
    }

    #[test]
    fn behavior_count_mismatch_rejected() {
        let mut s = Scenario::builder(deployment()).build().unwrap();
        s.behaviors.pop();
        assert_eq!(
            s.validate().unwrap_err(),
            ScenarioError::BehaviorCount {
                behaviors: 2,
                networks: 3
            }
        );
    }

    #[test]
    fn oracle_detection() {
        assert!(ThresholdMode::FixedOracle(Dbm::new(-77.0)).is_oracle());
        assert!(ThresholdMode::DcnOracle(DcnConfig::default()).is_oracle());
        assert!(!ThresholdMode::zigbee_default().is_oracle());
    }
}
