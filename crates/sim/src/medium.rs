//! The shared wireless medium.
//!
//! Tracks every transmission (active ones plus a short history so that
//! receptions ending now can still see interferers that ended mid-frame),
//! and answers the two questions the rest of the simulator asks:
//!
//! 1. *What power does node X sense on channel f right now?* (CCA, RSSI
//!    power sensing) — co-channel and inter-channel components reported
//!    separately so the oracle-classifier extension can use them.
//! 2. *What interference did reception R experience, segment by segment?*
//!    — used at frame end to turn SINR history into sampled bit errors.
//!
//! # Registry layout and invariants
//!
//! The registry is a **monotonic-id slab** plus a **per-channel index**:
//!
//! - `slab` is a [`VecDeque`] of transmissions in id order. The engine
//!   mints [`TxId`]s consecutively and registers every one, so ids in
//!   the slab are *contiguous*: [`Medium::get`] is O(1) arithmetic
//!   (`id - front.id`), not a scan.
//! - `channels` maps each distinct centre frequency (a channel-grid
//!   point) to the ids transmitted on it, in id order. Grid points are
//!   discovered on first use and kept sorted by frequency.
//! - Start times are non-decreasing in id (events are processed in time
//!   order), so a query window `[from, to]` narrows each channel's id
//!   list to `start + max_duration > from && start < to` with a short
//!   walk back from the tail (`max_duration` is the longest airtime
//!   seen).
//! - Pruning is **prefix-only**: `add` pops stale ids from the front of
//!   the slab (and of each channel list) until the front is younger
//!   than the retention horizon. The comparison is strict: an entry
//!   whose age equals the horizon exactly (`now − end == retention`) is
//!   *retained* and stays visible to the indexed scan — pinned by the
//!   `prune_boundary_equal_end_stays_visible_to_indexed_scan`
//!   regression. A mid-slab entry that outlived its
//!   retention while an older long frame is still in front is kept, but
//!   it is unobservable: every query window that could see it is issued
//!   at a simulated time before the `add` that would have pruned it.
//!
//! # Channel cutoff
//!
//! Power queries ([`Medium::sensed_components`], [`Medium::sensed_total`],
//! [`Medium::interference_segments`]) skip channels whose CFD to the
//! observer frequency exceeds [`AcrCurve::saturation_cfd`]: past the
//! curve's support the rejection is at its ~50 dB floor and the leaked
//! power (≈1e-5 of an already-weak signal) is physically negligible, so
//! such channels are treated as fully orthogonal. The predicate itself
//! lives in [`crate::reach::channel_coupled`] and is shared with the
//! shard partitioner, so sensing and partitioning can never disagree
//! about which channels couple. [`Medium::was_collided`]
//! intentionally does *not* apply the cutoff — the paper's collision
//! predicate compares against an explicit power floor, which a strong
//! far-channel emitter can still cross (the partitioner bounds that
//! path with [`crate::reach::above_collision_floor`]).
//!
//! # Summation order
//!
//! `interference_segments` sorts candidates back into id order, so its
//! floating-point sums are bit-identical to a flat id-ordered scan.
//! `sensed_components` accumulates channel-major (channels in ascending
//! frequency order, ids ascending within a channel) to keep the hot
//! path allocation-free; within any single channel the order is still
//! id order. The per-channel leakage factor is computed once per
//! channel per query instead of once per transmission.
//!
//! # Incremental active sets
//!
//! On top of the windowed index, each channel maintains an `active`
//! list updated by deltas: [`Medium::add`] appends, [`Medium::retire`]
//! (wired to the engine's TxEnd) removes. The instantaneous power
//! queries ([`Medium::sensed_components`], [`Medium::sensed_total`])
//! walk only these live entries instead of re-filtering the windowed
//! history on every CCA/RSSI sense. Because the active list is always
//! an id-ordered subsequence of the channel's id list and the activity
//! predicate still runs per entry, the contributing set and its
//! summation order — hence every output bit — match the windowed
//! reference walk, which stays compiled under test (and the
//! `naive-medium` feature) as `sensed_components_naive` and is pinned
//! against the incremental path by property tests. Historical queries
//! (`interference_segments`, `was_collided`) still use the windowed
//! index: they look back at windows where since-ended transmissions
//! must remain visible.
//!
//! # Caching (values unchanged, work moved)
//!
//! Two pure caches keep `powf`/`log10` out of the query loops without
//! perturbing a single bit of output: per-node received powers are
//! converted to linear milliwatts on first query per (transmission,
//! observer) pair and memoized, and leakage factors resolve through a
//! precomputed CFD-grid lookup table ([`AcrLut`]) — node and channel
//! frequencies live on a small grid, so channel-plan CFDs are table
//! reads and only off-grid stragglers fall back to a memoized analytic
//! evaluation. Both caches are bit-exact by construction.

use crate::events::{NodeId, TxId};
use crate::reach;
use nomc_phy::coupling::AcrCurve;
use nomc_phy::lut::AcrLut;
use nomc_phy::BerModel;
use nomc_rngcore::Rng;
use nomc_units::{Dbm, Megahertz, MilliWatts, SimDuration, SimTime};
use std::collections::VecDeque;

/// One on-air (or recently ended) transmission.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Unique id.
    pub id: TxId,
    /// Transmitting node.
    pub tx_node: NodeId,
    /// Global link index the frame belongs to.
    pub link: usize,
    /// Channel centre frequency.
    pub frequency: Megahertz,
    /// First symbol on air.
    pub start: SimTime,
    /// Start of the PSDU (after preamble/SFD/length header).
    pub mpdu_start: SimTime,
    /// Last symbol on air.
    pub end: SimTime,
    /// Sequence number within the link.
    pub seq: u32,
    /// Whether the MAC forced this frame out after CCA exhaustion.
    pub forced: bool,
    /// Received power at every node, shadowing already applied
    /// (indexed by `NodeId`). *Not* yet attenuated by channel filters —
    /// that depends on each observer's channel.
    pub rx_power: Vec<Dbm>,
}

impl Transmission {
    /// Whether the transmission is on air at `t`.
    #[inline]
    pub fn is_active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Overlap of this transmission with `[from, to]`, if any.
    #[inline]
    pub fn overlap(&self, from: SimTime, to: SimTime) -> Option<(SimTime, SimTime)> {
        let s = self.start.max(from);
        let e = self.end.min(to);
        if s < e {
            Some((s, e))
        } else {
            None
        }
    }
}

/// A constant-interference stretch of a reception.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Length of the stretch.
    pub duration: SimDuration,
    /// Total coupled interference power (noise *not* included).
    pub interference: MilliWatts,
}

/// One channel-index entry: enough of a transmission (id, raw-ns time
/// window, transmitter) to run the window/activity/overlap predicates
/// without touching the slab. Only actual contributors are fetched.
#[derive(Debug, Clone, Copy)]
struct ChanEntry {
    id: TxId,
    start_ns: u64,
    end_ns: u64,
    tx_node: NodeId,
}

/// The ids transmitted on one channel-grid point, in id order. A plain
/// `Vec` beats a ring buffer here: the list stays short (one retention
/// horizon of frames), so the occasional front-drain memmove is cheaper
/// than paying non-contiguous indexing on every binary-search probe.
///
/// `active` is the incrementally-maintained subset still on air: every
/// registration appends to it and [`Medium::retire`] (called by the
/// engine when the frame's TxEnd fires) removes from it, so the
/// instantaneous power queries walk a handful of live entries instead
/// of re-filtering the windowed history on every sense. It stays an
/// id-ordered subsequence of `ids` by construction (appends are in id
/// order, removals preserve order), which is what keeps the active-path
/// floating-point sums bit-identical to the windowed walk.
#[derive(Debug)]
struct Channel {
    freq: Megahertz,
    ids: Vec<ChanEntry>,
    active: Vec<ChanEntry>,
}

/// A slab entry: the transmission plus a lazily-filled cache of its
/// per-node received power in linear milliwatts. [`Dbm::to_milliwatts`]
/// is a `powf`; converting on first query (NaN = not yet converted)
/// instead of eagerly for all N nodes at [`Medium::add`] skips the
/// conversions for observers that never look — most of them once the
/// initializing phase's RSSI sweeps stop. The conversion is a pure
/// function of the stored dBm value, so when it happens cannot change a
/// bit of any result.
#[derive(Debug)]
struct Entry {
    tx: Transmission,
    rx_mw: Vec<std::cell::Cell<f64>>,
}

impl Entry {
    /// Received power at `observer` in linear milliwatts (cached powf).
    #[inline]
    fn rx_milliwatts(&self, observer: NodeId) -> MilliWatts {
        let cell = &self.rx_mw[observer];
        let v = cell.get();
        if v.is_nan() {
            let mw = self.tx.rx_power[observer].to_milliwatts();
            cell.set(mw.value());
            mw
        } else {
            MilliWatts::new(v)
        }
    }
}

/// Unregistered ambient energy — a fault-injected wideband jammer.
///
/// Ambient emitters are not nodes: they mint no [`TxId`], occupy no
/// slab slot, and couple into every observer at the same flat power.
/// They live outside the prune cycle (a fault plan holds a handful of
/// bursts, not a traffic stream) and their contributions are summed
/// *after* every registered transmission so that a medium with no
/// ambient energy produces bit-identical floating-point results.
#[derive(Debug, Clone, Copy)]
struct AmbientEntry {
    freq: Megahertz,
    rx_mw: MilliWatts,
    start: SimTime,
    end: SimTime,
}

impl AmbientEntry {
    #[inline]
    fn is_active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    #[inline]
    fn overlap(&self, from: SimTime, to: SimTime) -> Option<(SimTime, SimTime)> {
        let s = self.start.max(from);
        let e = self.end.min(to);
        if s < e {
            Some((s, e))
        } else {
            None
        }
    }
}

/// The medium: transmission registry plus the propagation constants
/// needed to couple powers across channels.
#[derive(Debug)]
pub struct Medium {
    /// The rejection curve with its CFD-grid lookup table (see
    /// [`AcrLut`]): channel-plan CFDs resolve by table read, anything
    /// off-grid falls through to `leak_cache`.
    acr: AcrLut,
    noise: MilliWatts,
    /// Id-ordered (and id-contiguous) transmission slab.
    slab: VecDeque<Entry>,
    /// Per-grid-point id lists, sorted by frequency.
    channels: Vec<Channel>,
    /// Longest airtime registered so far; bounds query windows.
    max_duration: SimDuration,
    /// CFD beyond which a channel is treated as fully orthogonal.
    cutoff_mhz: Megahertz,
    /// How long ended transmissions are retained for late segment queries.
    retention: SimDuration,
    /// Memoized [`AcrCurve::leakage_factor`] keyed by CFD bits, for the
    /// rare CFDs that miss the [`AcrLut`] grid (fractional channel
    /// plans): each pays the interpolation + `powf` exactly once.
    leak_cache: std::cell::RefCell<Vec<(u64, f64)>>,
    /// Reused working buffers for [`Medium::interference_segments`]
    /// (cleared on entry; the returned segment list is still freshly
    /// allocated because it is handed to the caller).
    scratch: std::cell::RefCell<SegScratch>,
    /// Fault-injected jammer bursts (see [`AmbientEntry`]).
    ambient: Vec<AmbientEntry>,
}

/// Working storage for [`Medium::interference_segments`]: the interferer
/// candidates and the segment boundaries. Kept on the medium so the two
/// intermediate allocations are paid once per run, not once per decode.
#[derive(Debug, Default)]
struct SegScratch {
    interferers: Vec<(TxId, SimTime, SimTime, MilliWatts)>,
    bounds: Vec<SimTime>,
}

impl Medium {
    /// Creates a medium with the given rejection curve and noise floor.
    pub fn new(acr: AcrCurve, noise: MilliWatts) -> Self {
        let cutoff_mhz = acr.saturation_cfd();
        Medium {
            acr: AcrLut::new(acr),
            noise,
            slab: VecDeque::new(),
            channels: Vec::new(),
            max_duration: SimDuration::ZERO,
            cutoff_mhz,
            // Longest frame is ≈ 4.3 ms; keep 4× that.
            retention: SimDuration::from_millis(20),
            leak_cache: std::cell::RefCell::new(Vec::new()),
            scratch: std::cell::RefCell::new(SegScratch::default()),
            ambient: Vec::new(),
        }
    }

    /// Registers an ambient jammer burst: unattributed energy on
    /// `frequency` coupling into every node at a flat `power` during
    /// `[start, end)`. Installed once at engine construction from the
    /// scenario's fault plan; with no bursts every query is bit-identical
    /// to a jammer-free medium.
    pub fn add_ambient(&mut self, frequency: Megahertz, power: Dbm, start: SimTime, end: SimTime) {
        self.ambient.push(AmbientEntry {
            freq: frequency,
            rx_mw: power.to_milliwatts(),
            start,
            end,
        });
    }

    /// Whether any ambient burst is live on a channel within
    /// `cutoff` MHz of `freq` at `now` (fault-plan introspection for
    /// recovery metrics; power queries already include ambient energy).
    pub fn ambient_active(&self, freq: Megahertz, now: SimTime) -> bool {
        self.ambient.iter().any(|a| {
            a.is_active_at(now) && reach::channel_coupled(a.freq.distance_to(freq), self.cutoff_mhz)
        })
    }

    /// Leakage factor at `cfd`: [`AcrLut`] table read for channel-grid
    /// CFDs (the steady-state path — one array index, no interpolation,
    /// no `powf`), `leak_cache` memo for anything off-grid. Both paths
    /// are bit-identical to [`AcrCurve::leakage_factor`].
    #[inline]
    fn leakage(&self, cfd: Megahertz) -> f64 {
        if let Some(f) = self.acr.grid_leakage(cfd) {
            return f;
        }
        let bits = cfd.value().to_bits();
        let mut cache = self.leak_cache.borrow_mut();
        if let Some(&(_, f)) = cache.iter().find(|&&(b, _)| b == bits) {
            return f;
        }
        let f = self.acr.curve().leakage_factor(cfd);
        cache.push((bits, f));
        f
    }

    /// The noise floor in linear power.
    pub fn noise(&self) -> MilliWatts {
        self.noise
    }

    /// The rejection curve.
    pub fn acr(&self) -> &AcrCurve {
        self.acr.curve()
    }

    /// Registers a transmission starting now and prunes stale history.
    ///
    /// Ids must be minted consecutively (each registered id is the
    /// predecessor's plus one); the engine's mint guarantees this, and
    /// [`Medium::get`] relies on it for O(1) lookup.
    pub fn add(&mut self, tx: Transmission) {
        debug_assert!(
            self.slab.back().is_none_or(|b| tx.id == b.tx.id + 1),
            "transmission ids must be consecutive (got {} after {:?})",
            tx.id,
            self.slab.back().map(|b| b.tx.id),
        );
        let now = tx.start;
        let mut pruned = false;
        while self
            .slab
            .front()
            .is_some_and(|e| now.saturating_since(e.tx.end) > self.retention)
        {
            self.slab.pop_front();
            pruned = true;
        }
        // The channel lists only need pruning when the slab front moved:
        // entries below the new base are unreachable through `entry`
        // either way (the id arithmetic misses), so deferring the drains
        // to prune-adds cannot change any query result.
        if pruned {
            let base = self.slab.front().map(|e| e.tx.id).unwrap_or(tx.id);
            for ch in &mut self.channels {
                let stale = ch.ids.partition_point(|e| e.id < base);
                ch.ids.drain(..stale);
                let stale = ch.active.partition_point(|e| e.id < base);
                ch.active.drain(..stale);
            }
        }
        self.max_duration = self.max_duration.max(tx.end.saturating_since(tx.start));
        let key = ChanEntry {
            id: tx.id,
            start_ns: tx.start.as_nanos(),
            end_ns: tx.end.as_nanos(),
            tx_node: tx.tx_node,
        };
        match self
            .channels
            .binary_search_by(|c| c.freq.value().total_cmp(&tx.frequency.value()))
        {
            Ok(i) => {
                self.channels[i].ids.push(key);
                self.channels[i].active.push(key);
            }
            Err(i) => self.channels.insert(
                i,
                Channel {
                    freq: tx.frequency,
                    ids: vec![key],
                    active: vec![key],
                },
            ),
        }
        let rx_mw = vec![std::cell::Cell::new(f64::NAN); tx.rx_power.len()];
        self.slab.push_back(Entry { tx, rx_mw });
    }

    /// Removes transmission `id` from its channel's active set. Called
    /// by the engine when the frame's TxEnd fires — at which point every
    /// instantaneous query already excludes it (activity windows are
    /// end-exclusive), so retiring is pure bookkeeping that keeps the
    /// active lists short. The entry stays in the slab and the windowed
    /// `ids` index for late segment/collision queries until the
    /// retention prune. Unknown or already-retired ids are no-ops.
    pub fn retire(&mut self, id: TxId) {
        let Some(tx) = self.get(id) else { return };
        let freq = tx.frequency.value();
        let Ok(ci) = self
            .channels
            .binary_search_by(|c| c.freq.value().total_cmp(&freq))
        else {
            return;
        };
        let ch = &mut self.channels[ci];
        if let Ok(pos) = ch.active.binary_search_by_key(&id, |e| e.id) {
            ch.active.remove(pos);
        }
    }

    /// The retained transmission history in slab (id) order — each entry
    /// with whether it is still in its channel's active set — plus the
    /// running airtime maximum. Together these are the medium's complete
    /// mutable state for checkpointing: the rx-milliwatt and leakage
    /// caches are pure functions of it, and ambient bursts are
    /// construction-time state.
    pub(crate) fn history(&self) -> (Vec<(Transmission, bool)>, SimDuration) {
        let mut active = std::collections::BTreeSet::new();
        for ch in &self.channels {
            active.extend(ch.active.iter().map(|e| e.id));
        }
        let history = self
            .slab
            .iter()
            .map(|e| (e.tx.clone(), active.contains(&e.tx.id)))
            .collect();
        (history, self.max_duration)
    }

    /// Rebuilds the slab and channel index from a [`Medium::history`]
    /// capture, replacing any current history.
    ///
    /// This is *not* a replay of [`Medium::add`]: no retention pruning
    /// runs (the capture already reflects every prune the original run
    /// performed, and replaying survivors could prune differently when
    /// airtimes are mixed), and `max_duration` is restored verbatim
    /// because pruned entries contributed to it. Channels that exist in
    /// the original but have no surviving entries are not recreated;
    /// empty channels contribute nothing to any query.
    pub(crate) fn restore_history(
        &mut self,
        history: Vec<(Transmission, bool)>,
        max_duration: SimDuration,
    ) {
        self.slab.clear();
        self.channels.clear();
        self.max_duration = max_duration;
        for (tx, live) in history {
            debug_assert!(
                self.slab.back().is_none_or(|b| tx.id == b.tx.id + 1),
                "history ids must be consecutive",
            );
            let key = ChanEntry {
                id: tx.id,
                start_ns: tx.start.as_nanos(),
                end_ns: tx.end.as_nanos(),
                tx_node: tx.tx_node,
            };
            match self
                .channels
                .binary_search_by(|c| c.freq.value().total_cmp(&tx.frequency.value()))
            {
                Ok(i) => {
                    self.channels[i].ids.push(key);
                    if live {
                        self.channels[i].active.push(key);
                    }
                }
                Err(i) => self.channels.insert(
                    i,
                    Channel {
                        freq: tx.frequency,
                        ids: vec![key],
                        active: if live { vec![key] } else { Vec::new() },
                    },
                ),
            }
            let rx_mw = vec![std::cell::Cell::new(f64::NAN); tx.rx_power.len()];
            self.slab.push_back(Entry { tx, rx_mw });
        }
    }

    /// Looks up a slab entry by id in O(1) (id arithmetic off the front).
    #[inline]
    fn entry(&self, id: TxId) -> Option<&Entry> {
        let base = self.slab.front()?.tx.id;
        let idx = usize::try_from(id.checked_sub(base)?).ok()?;
        self.slab.get(idx).filter(|e| e.tx.id == id)
    }

    /// Looks up a transmission by id (active or recent) in O(1).
    pub fn get(&self, id: TxId) -> Option<&Transmission> {
        self.entry(id).map(|e| &e.tx)
    }

    /// Number of tracked (active + recent) transmissions.
    pub fn tracked(&self) -> usize {
        self.slab.len()
    }

    /// Index range of `ch.ids` that can overlap `[from_ns, to_ns)`:
    /// entries with `start < to` and `start + max_duration > from`.
    /// Both predicates are monotone in id because starts are.
    ///
    /// Query windows end at (or a retention horizon behind) the current
    /// simulated time, i.e. near the tail of the start-ordered list, so
    /// this walks back from the end: the walk visits only the entries
    /// the caller is about to scan anyway, which on these short lists
    /// beats two binary searches. The indices are exactly the
    /// partition points of the two predicates.
    #[inline]
    fn window(&self, ch: &Channel, from_ns: u64, to_ns: u64) -> (usize, usize) {
        let max_ns = self.max_duration.as_nanos();
        let mut hi = ch.ids.len();
        while hi > 0 && ch.ids[hi - 1].start_ns >= to_ns {
            hi -= 1;
        }
        let mut lo = hi;
        while lo > 0 && ch.ids[lo - 1].start_ns.saturating_add(max_ns) > from_ns {
            lo -= 1;
        }
        (lo, hi)
    }

    /// Instantaneous sensed power at `observer` tuned to `freq`, split
    /// into (co-channel, inter-channel) components, *excluding* the
    /// observer's own emissions and *excluding* noise.
    ///
    /// "Co-channel" means CFD < 0.5 MHz (same grid point). Channels
    /// beyond the ACR curve's support contribute nothing (see the
    /// module notes on the channel cutoff and summation order).
    pub fn sensed_components(
        &self,
        observer: NodeId,
        freq: Megahertz,
        now: SimTime,
    ) -> (MilliWatts, MilliWatts) {
        let mut co = MilliWatts::ZERO;
        let mut inter = MilliWatts::ZERO;
        let now_ns = now.as_nanos();
        // Incremental path: each channel's `active` list holds exactly
        // the registered-but-not-retired entries, maintained by
        // add/retire deltas. The activity predicate still runs per entry
        // (an engine that never calls `retire`, or a query at a past
        // instant, must see identical results), but the list being a
        // live id-ordered subsequence of `ids` means the contributing
        // set — and therefore the summation order — matches
        // [`Medium::sensed_components_naive`] bit for bit.
        for ch in &self.channels {
            if ch.active.is_empty() {
                continue;
            }
            let cfd = ch.freq.distance_to(freq);
            if !reach::channel_coupled(cfd, self.cutoff_mhz) {
                continue;
            }
            let mut leak: Option<f64> = None;
            for ce in &ch.active {
                if ce.tx_node == observer || !(ce.start_ns <= now_ns && now_ns < ce.end_ns) {
                    continue;
                }
                let Some(e) = self.entry(ce.id) else { continue };
                let factor = *leak.get_or_insert_with(|| self.leakage(cfd));
                let coupled = e.rx_milliwatts(observer) * factor;
                if cfd.value() < 0.5 {
                    co += coupled;
                } else {
                    inter += coupled;
                }
            }
        }
        // Ambient (jammer) energy last, so the fault-free sum above is
        // untouched bit for bit.
        for a in &self.ambient {
            if !a.is_active_at(now) {
                continue;
            }
            let cfd = a.freq.distance_to(freq);
            if !reach::channel_coupled(cfd, self.cutoff_mhz) {
                continue;
            }
            let coupled = a.rx_mw * self.leakage(cfd);
            if cfd.value() < 0.5 {
                co += coupled;
            } else {
                inter += coupled;
            }
        }
        (co, inter)
    }

    /// The pre-incremental reference walk: filters each channel's full
    /// windowed id list per query instead of consulting the maintained
    /// active sets. Kept compiled under test (and the `naive-medium`
    /// feature) as the oracle the property tests pin
    /// [`Medium::sensed_components`] against, bit for bit.
    #[cfg(any(test, feature = "naive-medium"))]
    pub fn sensed_components_naive(
        &self,
        observer: NodeId,
        freq: Megahertz,
        now: SimTime,
    ) -> (MilliWatts, MilliWatts) {
        let mut co = MilliWatts::ZERO;
        let mut inter = MilliWatts::ZERO;
        let now_ns = now.as_nanos();
        for ch in &self.channels {
            let cfd = ch.freq.distance_to(freq);
            if !reach::channel_coupled(cfd, self.cutoff_mhz) {
                continue;
            }
            let (lo, hi) = self.window(ch, now_ns, now_ns.saturating_add(1));
            if lo == hi {
                continue;
            }
            let mut leak: Option<f64> = None;
            for ce in &ch.ids[lo..hi] {
                if ce.tx_node == observer || !(ce.start_ns <= now_ns && now_ns < ce.end_ns) {
                    continue;
                }
                let Some(e) = self.entry(ce.id) else { continue };
                let factor = *leak.get_or_insert_with(|| self.leakage(cfd));
                let coupled = e.rx_milliwatts(observer) * factor;
                if cfd.value() < 0.5 {
                    co += coupled;
                } else {
                    inter += coupled;
                }
            }
        }
        for a in &self.ambient {
            if !a.is_active_at(now) {
                continue;
            }
            let cfd = a.freq.distance_to(freq);
            if !reach::channel_coupled(cfd, self.cutoff_mhz) {
                continue;
            }
            let coupled = a.rx_mw * self.leakage(cfd);
            if cfd.value() < 0.5 {
                co += coupled;
            } else {
                inter += coupled;
            }
        }
        (co, inter)
    }

    /// Total sensed power (co + inter + noise) at `observer` on `freq` —
    /// what an RSSI register measures.
    pub fn sensed_total(&self, observer: NodeId, freq: Megahertz, now: SimTime) -> MilliWatts {
        let (co, inter) = self.sensed_components(observer, freq, now);
        co + inter + self.noise
    }

    /// Piecewise-constant interference experienced by `observer` (tuned
    /// to `freq`) during `[from, to]`, excluding transmission `subject`
    /// and the observer's own emissions. Noise is *not* included.
    /// Channels beyond the ACR curve's support contribute nothing.
    ///
    /// Returns segments in chronological order covering exactly
    /// `[from, to]`.
    pub fn interference_segments(
        &self,
        subject: TxId,
        observer: NodeId,
        freq: Megahertz,
        from: SimTime,
        to: SimTime,
    ) -> Vec<Segment> {
        let mut segments = Vec::new();
        self.interference_segments_into(subject, observer, freq, from, to, &mut segments);
        segments
    }

    /// [`Medium::interference_segments`] writing into a caller-supplied
    /// buffer (cleared first). The engine reuses one buffer across every
    /// sync/decode query so the hot path allocates nothing per frame;
    /// the segment values are identical to the allocating variant.
    pub fn interference_segments_into(
        &self,
        subject: TxId,
        observer: NodeId,
        freq: Megahertz,
        from: SimTime,
        to: SimTime,
        segments: &mut Vec<Segment>,
    ) {
        debug_assert!(from <= to);
        segments.clear();
        let (from_ns, to_ns) = (from.as_nanos(), to.as_nanos());
        let mut scratch = self.scratch.borrow_mut();
        let SegScratch {
            interferers,
            bounds,
        } = &mut *scratch;
        // Collect overlapping interferers with their coupled powers,
        // then restore id order so the per-segment floating-point sums
        // match a flat id-ordered scan bit for bit.
        interferers.clear();
        for ch in &self.channels {
            let cfd = ch.freq.distance_to(freq);
            if !reach::channel_coupled(cfd, self.cutoff_mhz) {
                continue;
            }
            let (lo, hi) = self.window(ch, from_ns, to_ns);
            let mut leak: Option<f64> = None;
            for ce in &ch.ids[lo..hi] {
                if ce.id == subject
                    || ce.tx_node == observer
                    || ce.start_ns.max(from_ns) >= ce.end_ns.min(to_ns)
                {
                    continue;
                }
                let Some(entry) = self.entry(ce.id) else {
                    continue;
                };
                let Some((s, e)) = entry.tx.overlap(from, to) else {
                    continue;
                };
                let factor = *leak.get_or_insert_with(|| self.leakage(cfd));
                let coupled = entry.rx_milliwatts(observer) * factor;
                interferers.push((ce.id, s, e, coupled));
            }
        }
        interferers.sort_unstable_by_key(|&(id, ..)| id);
        // Ambient (jammer) energy joins *after* the id-order sort: the
        // per-segment sums stay `registered ids ascending, then ambient
        // bursts in plan order`, and with no bursts they are bit-identical
        // to the fault-free scan. Jammers have no id and belong to no
        // node, so the subject/observer exclusions do not apply.
        for a in &self.ambient {
            if !reach::channel_coupled(a.freq.distance_to(freq), self.cutoff_mhz) {
                continue;
            }
            let Some((s, e)) = a.overlap(from, to) else {
                continue;
            };
            let coupled = a.rx_mw * self.leakage(a.freq.distance_to(freq));
            interferers.push((TxId::MAX, s, e, coupled));
        }
        // Build segment boundaries.
        bounds.clear();
        bounds.push(from);
        bounds.push(to);
        for &(_, s, e, _) in interferers.iter() {
            bounds.push(s);
            bounds.push(e);
        }
        bounds.sort();
        bounds.dedup();
        segments.reserve(bounds.len().saturating_sub(1));
        for (&s, &e) in bounds.iter().zip(bounds.iter().skip(1)) {
            if s == e {
                continue;
            }
            let mut power = MilliWatts::ZERO;
            for &(_, is, ie, p) in interferers.iter() {
                if is <= s && e <= ie {
                    power += p;
                }
            }
            segments.push(Segment {
                duration: e - s,
                interference: power,
            });
        }
        if segments.is_empty() {
            segments.push(Segment {
                duration: to - from,
                interference: MilliWatts::ZERO,
            });
        }
    }

    /// Whether any *other* transmission overlapped `[from, to]` with a
    /// coupled power above `floor` at the observer — the "collided"
    /// predicate for the paper's CPRR metric.
    ///
    /// Unlike the power queries this scans every channel: the explicit
    /// `floor` comparison can be crossed even by a fully-rejected
    /// far-channel emitter at close range.
    pub fn was_collided(
        &self,
        subject: TxId,
        observer: NodeId,
        freq: Megahertz,
        from: SimTime,
        to: SimTime,
        floor: Dbm,
    ) -> bool {
        let max_ns = self.max_duration.as_nanos();
        let lo = self
            .slab
            .partition_point(|e| e.tx.start.as_nanos().saturating_add(max_ns) <= from.as_nanos());
        let hi = self
            .slab
            .partition_point(|e| e.tx.start.as_nanos() < to.as_nanos());
        self.slab.range(lo..hi.max(lo)).any(|e| {
            let t = &e.tx;
            t.id != subject && t.tx_node != observer && t.overlap(from, to).is_some() && {
                let coupled =
                    e.rx_milliwatts(observer) * self.leakage(t.frequency.distance_to(freq));
                coupled.to_dbm() > floor
            }
        }) || self.ambient.iter().any(|a| {
            a.overlap(from, to).is_some() && {
                let coupled = a.rx_mw * self.leakage(a.freq.distance_to(freq));
                coupled.to_dbm() > floor
            }
        })
    }
}

/// One bit at 250 kb/s: 4 µs.
pub const BIT_DURATION: SimDuration = SimDuration::from_micros(4);

/// Samples bit errors over `segments` for a signal of `signal` dBm,
/// returning `(error_bits, total_bits)`.
///
/// Bits are allotted to segments proportionally to duration; the total is
/// the true bit count of the window (durations rounded per segment, which
/// is exact when segment boundaries fall on bit boundaries and off by at
/// most one bit otherwise).
pub fn sample_segment_errors<R: Rng + ?Sized>(
    rng: &mut R,
    segments: &[Segment],
    signal: Dbm,
    noise: MilliWatts,
    model: BerModel,
) -> (u32, u32) {
    let signal_mw = signal.to_milliwatts();
    let mut errors = 0u32;
    let mut bits = 0u32;
    // Within one window the same interference power recurs (quiet
    // stretches between the same interferer set); BER is a pure function
    // of (signal, interference), so a small per-call memo skips the
    // log/pow/exp chain on repeats without changing a bit.
    let mut memo = [(0u64, 0.0f64); 8];
    let mut memo_len = 0usize;
    for seg in segments {
        let n = (seg.duration.as_nanos() / BIT_DURATION.as_nanos()) as u32;
        if n == 0 {
            continue;
        }
        let key = seg.interference.value().to_bits();
        let ber = match memo[..memo_len].iter().find(|&&(k, _)| k == key) {
            Some(&(_, b)) => b,
            None => {
                let sinr = nomc_phy::sinr::sinr_linear(signal_mw, seg.interference + noise);
                let b = model.bit_error_rate(sinr);
                if memo_len < memo.len() {
                    memo[memo_len] = (key, b);
                    memo_len += 1;
                }
                b
            }
        };
        errors += nomc_phy::biterror::sample_bit_errors(rng, n, ber);
        bits += n;
    }
    (errors, bits)
}

/// Computes the probability that a sync header (preamble + SFD, 40 bits)
/// decodes, given its segments.
pub fn sync_success_probability(
    segments: &[Segment],
    signal: Dbm,
    noise: MilliWatts,
    model: BerModel,
) -> f64 {
    let signal_mw = signal.to_milliwatts();
    let mut p = 1.0;
    // Same pure-function memo as in [`sample_segment_errors`], keyed by
    // (interference, bit count) since the success probability depends on
    // both.
    let mut memo = [(0u64, 0u32, 0.0f64); 8];
    let mut memo_len = 0usize;
    for seg in segments {
        let n = (seg.duration.as_nanos() / BIT_DURATION.as_nanos()) as u32;
        if n == 0 {
            continue;
        }
        let key = seg.interference.value().to_bits();
        let ps = match memo[..memo_len]
            .iter()
            .find(|&&(k, m, _)| k == key && m == n)
        {
            Some(&(.., v)) => v,
            None => {
                let sinr = nomc_phy::sinr::sinr_linear(signal_mw, seg.interference + noise);
                let v = model.frame_success_probability(sinr, n);
                if memo_len < memo.len() {
                    memo[memo_len] = (key, n, v);
                    memo_len += 1;
                }
                v
            }
        };
        p *= ps;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::SeedableRng;

    fn mk_tx(
        id: TxId,
        node: NodeId,
        freq: f64,
        start_us: u64,
        end_us: u64,
        p: f64,
    ) -> Transmission {
        Transmission {
            id,
            tx_node: node,
            link: node,
            frequency: Megahertz::new(freq),
            start: SimTime::from_micros(start_us),
            mpdu_start: SimTime::from_micros(start_us + 192),
            end: SimTime::from_micros(end_us),
            seq: 0,
            forced: false,
            rx_power: vec![Dbm::new(p); 4],
        }
    }

    fn medium() -> Medium {
        Medium::new(
            AcrCurve::cc2420_calibrated(),
            Dbm::new(-98.0).to_milliwatts(),
        )
    }

    #[test]
    fn sensed_components_split_by_channel() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0)); // co-channel for 2460 observer
        m.add(mk_tx(2, 1, 2463.0, 0, 3000, -60.0)); // +3 MHz
        let now = SimTime::from_micros(1000);
        let (co, inter) = m.sensed_components(3, Megahertz::new(2460.0), now);
        assert!((co.to_dbm().value() - (-60.0)).abs() < 0.01);
        // 20 dB rejection at 3 MHz.
        assert!((inter.to_dbm().value() - (-80.0)).abs() < 0.01);
    }

    #[test]
    fn own_transmissions_excluded() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -50.0));
        let (co, inter) = m.sensed_components(0, Megahertz::new(2460.0), SimTime::from_micros(1));
        assert_eq!(co, MilliWatts::ZERO);
        assert_eq!(inter, MilliWatts::ZERO);
    }

    #[test]
    fn inactive_transmissions_not_sensed() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 100, -50.0));
        let total = m.sensed_total(1, Megahertz::new(2460.0), SimTime::from_micros(200));
        assert!((total.to_dbm().value() - (-98.0)).abs() < 0.1, "only noise");
    }

    #[test]
    fn beyond_support_channels_are_orthogonal() {
        let mut m = medium();
        let sat = m.acr().saturation_cfd().value();
        // One emitter just past the curve's support, one exactly at it.
        m.add(mk_tx(1, 0, 2460.0 + sat + 1.0, 0, 3000, -30.0));
        m.add(mk_tx(2, 1, 2460.0 + sat, 0, 3000, -30.0));
        let now = SimTime::from_micros(1000);
        let (co, inter) = m.sensed_components(3, Megahertz::new(2460.0), now);
        assert_eq!(co, MilliWatts::ZERO);
        assert!(
            inter > MilliWatts::ZERO,
            "the at-saturation channel still leaks"
        );
        let expected =
            Dbm::new(-30.0).to_milliwatts().value() * m.acr().leakage_factor(Megahertz::new(sat));
        assert!(
            (inter.value() - expected).abs() <= expected * 1e-12,
            "only the at-saturation emitter contributes"
        );
        // Segments likewise ignore the beyond-support emitter: only the
        // at-saturation one leaks into the 2460 MHz observer's window.
        let segs = m.interference_segments(
            99,
            3,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        assert_eq!(segs.len(), 1);
        assert!((segs[0].interference.value() - expected).abs() <= expected * 1e-12);
        // ... but the collision predicate still sees it: −30 dBm with
        // ~50 dB rejection is −80 dBm, above a −100 dBm floor.
        assert!(m.was_collided(
            2,
            3,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
            Dbm::new(-100.0)
        ));
    }

    #[test]
    fn segments_partition_the_window() {
        let mut m = medium();
        // Subject: [0, 3000]; interferer A: [500, 1200]; B: [1000, 4000].
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        m.add(mk_tx(2, 1, 2460.0, 500, 1200, -70.0));
        m.add(mk_tx(3, 2, 2460.0, 1000, 4000, -70.0));
        let segs = m.interference_segments(
            1,
            3,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        let total: SimDuration = segs.iter().map(|s| s.duration).sum();
        assert_eq!(total, SimDuration::from_micros(3000));
        // Expect 5 segments: [0,500) quiet, [500,1000) A, [1000,1200) A+B,
        // [1200,3000) B.
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].interference, MilliWatts::ZERO);
        assert!(segs[2].interference > segs[1].interference);
        assert!((segs[2].interference.to_dbm().value() - (-66.99)).abs() < 0.05);
    }

    #[test]
    fn quiet_window_single_segment() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        let segs = m.interference_segments(
            1,
            1,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interference, MilliWatts::ZERO);
    }

    #[test]
    fn ended_interferers_still_visible_for_late_queries() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 500, -70.0)); // ends early
        m.add(mk_tx(2, 1, 2460.0, 100, 3000, -60.0)); // subject
        let segs = m.interference_segments(
            2,
            2,
            Megahertz::new(2460.0),
            SimTime::from_micros(100),
            SimTime::from_micros(3000),
        );
        assert!(
            segs[0].interference > MilliWatts::ZERO,
            "early overlap seen"
        );
    }

    #[test]
    fn history_pruned_after_retention() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 100, -70.0));
        assert_eq!(m.tracked(), 1);
        m.add(mk_tx(2, 1, 2460.0, 50_000, 53_000, -70.0));
        assert_eq!(m.tracked(), 1, "stale entry pruned on add");
        assert!(m.get(1).is_none());
        assert!(m.get(2).is_some());
    }

    #[test]
    fn get_survives_pruning_and_misses_cleanly() {
        let mut m = medium();
        for id in 1..=5 {
            m.add(mk_tx(id, 0, 2460.0, id * 100, id * 100 + 50, -70.0));
        }
        assert!(m.get(0).is_none(), "below the slab");
        assert!(m.get(6).is_none(), "beyond the slab");
        assert_eq!(m.get(3).map(|t| t.id), Some(3));
        // Push the front past retention; survivors stay addressable.
        m.add(mk_tx(6, 1, 2463.0, 50_000, 53_000, -70.0));
        assert!(m.get(1).is_none());
        assert_eq!(m.get(6).map(|t| t.seq), Some(0));
    }

    #[test]
    fn stale_mid_slab_entries_invisible_to_queries() {
        let mut m = medium();
        // A long frame holds the slab front while a short one goes stale
        // behind it (prefix pruning keeps both).
        m.add(mk_tx(1, 0, 2460.0, 0, 40_000, -60.0)); // long
        m.add(mk_tx(2, 1, 2460.0, 100, 200, -50.0)); // short, stale soon
        m.add(mk_tx(3, 2, 2460.0, 39_000, 42_000, -70.0));
        assert_eq!(m.tracked(), 3, "prefix pruning keeps the stale entry");
        let total = m.sensed_total(3, Megahertz::new(2460.0), SimTime::from_micros(39_500));
        // Only tx 1 (−60) and tx 3 (−70) are active; tx 2 ended long ago.
        let expected = Dbm::new(-60.0).to_milliwatts()
            + Dbm::new(-70.0).to_milliwatts()
            + Dbm::new(-98.0).to_milliwatts();
        assert!((total.value() - expected.value()).abs() <= expected.value() * 1e-12);
    }

    #[test]
    fn boundary_equal_history_survives_prune_and_stays_indexed() {
        let mut m = medium();
        // tx 1 ends at t = 1 ms; the next add lands at t = 21 ms, so
        // `now − end` equals the 20 ms retention horizon *exactly*.
        m.add(mk_tx(1, 0, 2460.0, 0, 1000, -60.0));
        m.add(mk_tx(2, 1, 2460.0, 21_000, 24_000, -70.0));
        assert_eq!(m.tracked(), 2, "boundary-equal entry must be retained");
        assert!(m.get(1).is_some());
        // ... and must still be visible to the indexed segment scan.
        let segs = m.interference_segments(
            2,
            2,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(1000),
        );
        assert!(
            segs[0].interference > MilliWatts::ZERO,
            "indexed scan must see the boundary-equal transmission"
        );
        // One nanosecond past the horizon it is pruned.
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 1000, -60.0));
        let mut late = mk_tx(2, 1, 2460.0, 21_000, 24_000, -70.0);
        late.start += SimDuration::from_nanos(1);
        m.add(late);
        assert_eq!(m.tracked(), 1, "past-boundary entry must be pruned");
        assert!(m.get(1).is_none());
    }

    #[test]
    fn ambient_energy_joins_power_queries() {
        let mut m = medium();
        m.add_ambient(
            Megahertz::new(2460.0),
            Dbm::new(-55.0),
            SimTime::from_micros(1000),
            SimTime::from_micros(2000),
        );
        let f = Megahertz::new(2460.0);
        // Active window: co-channel energy at every observer.
        let (co, inter) = m.sensed_components(0, f, SimTime::from_micros(1500));
        assert!((co.to_dbm().value() - (-55.0)).abs() < 0.01, "{co:?}");
        assert_eq!(inter, MilliWatts::ZERO);
        // End-exclusive: gone at exactly t = end.
        let (co, _) = m.sensed_components(0, f, SimTime::from_micros(2000));
        assert_eq!(co, MilliWatts::ZERO);
        // Cross-channel: leaks with the ACR rejection like any emitter.
        let (co, inter) =
            m.sensed_components(0, Megahertz::new(2463.0), SimTime::from_micros(1500));
        assert_eq!(co, MilliWatts::ZERO);
        assert!((inter.to_dbm().value() - (-75.0)).abs() < 0.1, "{inter:?}");
        assert!(m.ambient_active(f, SimTime::from_micros(1500)));
        assert!(!m.ambient_active(f, SimTime::from_micros(2000)));
    }

    #[test]
    fn ambient_energy_joins_segments_and_collision() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0)); // subject
        m.add_ambient(
            Megahertz::new(2460.0),
            Dbm::new(-55.0),
            SimTime::from_micros(1000),
            SimTime::from_micros(2000),
        );
        let segs = m.interference_segments(
            1,
            1,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        // [0,1000) quiet, [1000,2000) jammed, [2000,3000) quiet.
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].interference, MilliWatts::ZERO);
        assert!((segs[1].interference.to_dbm().value() - (-55.0)).abs() < 0.01);
        assert_eq!(segs[2].interference, MilliWatts::ZERO);
        assert!(m.was_collided(
            1,
            1,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
            Dbm::new(-100.0)
        ));
        // Outside the burst the jammer does not collide.
        assert!(!m.was_collided(
            1,
            1,
            Megahertz::new(2460.0),
            SimTime::from_micros(2100),
            SimTime::from_micros(3000),
            Dbm::new(-100.0)
        ));
    }

    #[test]
    fn collided_predicate() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        m.add(mk_tx(2, 1, 2463.0, 1000, 2000, -60.0));
        let f = Megahertz::new(2460.0);
        let floor = Dbm::new(-100.0);
        assert!(m.was_collided(1, 3, f, SimTime::ZERO, SimTime::from_micros(3000), floor));
        // Adjacent-channel overlaps count too (coupled power −80 dBm).
        assert!(m.was_collided(
            2,
            3,
            Megahertz::new(2463.0),
            SimTime::from_micros(1500),
            SimTime::from_micros(1800),
            floor
        ));
        // No overlap in the queried window → not collided.
        assert!(!m.was_collided(
            1,
            3,
            f,
            SimTime::from_micros(3500),
            SimTime::from_micros(4000),
            floor
        ));
    }

    #[test]
    fn segment_error_sampling_scales_with_sinr() {
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let noise = Dbm::new(-98.0).to_milliwatts();
        let quiet = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: MilliWatts::ZERO,
        }];
        let (errs, bits) = sample_segment_errors(
            &mut rng,
            &quiet,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert_eq!(bits, 744);
        assert_eq!(errs, 0, "38 dB SNR is error-free");

        let jammed = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: Dbm::new(-57.0).to_milliwatts(),
        }];
        let (errs, _) = sample_segment_errors(
            &mut rng,
            &jammed,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert!(errs >= 1, "-3 dB SINR must corrupt the frame, got {errs}");
        let destroyed = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: Dbm::new(-50.0).to_milliwatts(),
        }];
        let (errs, _) = sample_segment_errors(
            &mut rng,
            &destroyed,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert!(errs > 100, "-10 dB SINR must corrupt heavily, got {errs}");
    }

    #[test]
    fn sync_probability_extremes() {
        let noise = Dbm::new(-98.0).to_milliwatts();
        let quiet = [Segment {
            duration: SimDuration::from_micros(160),
            interference: MilliWatts::ZERO,
        }];
        let p = sync_success_probability(&quiet, Dbm::new(-60.0), noise, BerModel::Oqpsk802154);
        assert!(p > 0.9999);
        let jammed = [Segment {
            duration: SimDuration::from_micros(160),
            interference: Dbm::new(-50.0).to_milliwatts(),
        }];
        let p = sync_success_probability(&jammed, Dbm::new(-60.0), noise, BerModel::Oqpsk802154);
        assert!(p < 0.05, "got {p}");
    }
}
