//! The shared wireless medium.
//!
//! Tracks every transmission (active ones plus a short history so that
//! receptions ending now can still see interferers that ended mid-frame),
//! and answers the two questions the rest of the simulator asks:
//!
//! 1. *What power does node X sense on channel f right now?* (CCA, RSSI
//!    power sensing) — co-channel and inter-channel components reported
//!    separately so the oracle-classifier extension can use them.
//! 2. *What interference did reception R experience, segment by segment?*
//!    — used at frame end to turn SINR history into sampled bit errors.

use crate::events::{NodeId, TxId};
use nomc_phy::coupling::AcrCurve;
use nomc_phy::BerModel;
use nomc_rngcore::Rng;
use nomc_units::{Dbm, Megahertz, MilliWatts, SimDuration, SimTime};

/// One on-air (or recently ended) transmission.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Unique id.
    pub id: TxId,
    /// Transmitting node.
    pub tx_node: NodeId,
    /// Global link index the frame belongs to.
    pub link: usize,
    /// Channel centre frequency.
    pub frequency: Megahertz,
    /// First symbol on air.
    pub start: SimTime,
    /// Start of the PSDU (after preamble/SFD/length header).
    pub mpdu_start: SimTime,
    /// Last symbol on air.
    pub end: SimTime,
    /// Sequence number within the link.
    pub seq: u32,
    /// Whether the MAC forced this frame out after CCA exhaustion.
    pub forced: bool,
    /// Received power at every node, shadowing already applied
    /// (indexed by `NodeId`). *Not* yet attenuated by channel filters —
    /// that depends on each observer's channel.
    pub rx_power: Vec<Dbm>,
}

impl Transmission {
    /// Whether the transmission is on air at `t`.
    pub fn is_active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Overlap of this transmission with `[from, to]`, if any.
    pub fn overlap(&self, from: SimTime, to: SimTime) -> Option<(SimTime, SimTime)> {
        let s = self.start.max(from);
        let e = self.end.min(to);
        if s < e {
            Some((s, e))
        } else {
            None
        }
    }
}

/// A constant-interference stretch of a reception.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Length of the stretch.
    pub duration: SimDuration,
    /// Total coupled interference power (noise *not* included).
    pub interference: MilliWatts,
}

/// The medium: transmission registry plus the propagation constants
/// needed to couple powers across channels.
#[derive(Debug)]
pub struct Medium {
    acr: AcrCurve,
    noise: MilliWatts,
    transmissions: Vec<Transmission>,
    /// How long ended transmissions are retained for late segment queries.
    retention: SimDuration,
}

impl Medium {
    /// Creates a medium with the given rejection curve and noise floor.
    pub fn new(acr: AcrCurve, noise: MilliWatts) -> Self {
        Medium {
            acr,
            noise,
            transmissions: Vec::new(),
            // Longest frame is ≈ 4.3 ms; keep 4× that.
            retention: SimDuration::from_millis(20),
        }
    }

    /// The noise floor in linear power.
    pub fn noise(&self) -> MilliWatts {
        self.noise
    }

    /// The rejection curve.
    pub fn acr(&self) -> &AcrCurve {
        &self.acr
    }

    /// Registers a transmission starting now and prunes stale history.
    pub fn add(&mut self, tx: Transmission) {
        let now = tx.start;
        self.transmissions
            .retain(|t| now.saturating_since(t.end) <= self.retention);
        self.transmissions.push(tx);
    }

    /// Looks up a transmission by id (active or recent).
    pub fn get(&self, id: TxId) -> Option<&Transmission> {
        self.transmissions.iter().find(|t| t.id == id)
    }

    /// Number of tracked (active + recent) transmissions.
    pub fn tracked(&self) -> usize {
        self.transmissions.len()
    }

    /// Instantaneous sensed power at `observer` tuned to `freq`, split
    /// into (co-channel, inter-channel) components, *excluding* the
    /// observer's own emissions and *excluding* noise.
    ///
    /// "Co-channel" means CFD < 0.5 MHz (same grid point).
    pub fn sensed_components(
        &self,
        observer: NodeId,
        freq: Megahertz,
        now: SimTime,
    ) -> (MilliWatts, MilliWatts) {
        let mut co = MilliWatts::ZERO;
        let mut inter = MilliWatts::ZERO;
        for t in &self.transmissions {
            if t.tx_node == observer || !t.is_active_at(now) {
                continue;
            }
            let cfd = t.frequency.distance_to(freq);
            let coupled = t.rx_power[observer].to_milliwatts() * self.acr.leakage_factor(cfd);
            if cfd.value() < 0.5 {
                co += coupled;
            } else {
                inter += coupled;
            }
        }
        (co, inter)
    }

    /// Total sensed power (co + inter + noise) at `observer` on `freq` —
    /// what an RSSI register measures.
    pub fn sensed_total(&self, observer: NodeId, freq: Megahertz, now: SimTime) -> MilliWatts {
        let (co, inter) = self.sensed_components(observer, freq, now);
        co + inter + self.noise
    }

    /// Piecewise-constant interference experienced by `observer` (tuned
    /// to `freq`) during `[from, to]`, excluding transmission `subject`
    /// and the observer's own emissions. Noise is *not* included.
    ///
    /// Returns segments in chronological order covering exactly
    /// `[from, to]`.
    pub fn interference_segments(
        &self,
        subject: TxId,
        observer: NodeId,
        freq: Megahertz,
        from: SimTime,
        to: SimTime,
    ) -> Vec<Segment> {
        debug_assert!(from <= to);
        // Collect overlapping interferers with their coupled powers.
        let mut interferers: Vec<(SimTime, SimTime, MilliWatts)> = Vec::new();
        for t in &self.transmissions {
            if t.id == subject || t.tx_node == observer {
                continue;
            }
            if let Some((s, e)) = t.overlap(from, to) {
                let coupled = t.rx_power[observer].to_milliwatts()
                    * self.acr.leakage_factor(t.frequency.distance_to(freq));
                interferers.push((s, e, coupled));
            }
        }
        // Build segment boundaries.
        let mut bounds: Vec<SimTime> = Vec::with_capacity(interferers.len() * 2 + 2);
        bounds.push(from);
        bounds.push(to);
        for &(s, e, _) in &interferers {
            bounds.push(s);
            bounds.push(e);
        }
        bounds.sort();
        bounds.dedup();
        let mut segments = Vec::with_capacity(bounds.len() - 1);
        for (&s, &e) in bounds.iter().zip(bounds.iter().skip(1)) {
            if s == e {
                continue;
            }
            let mut power = MilliWatts::ZERO;
            for &(is, ie, p) in &interferers {
                if is <= s && e <= ie {
                    power += p;
                }
            }
            segments.push(Segment {
                duration: e - s,
                interference: power,
            });
        }
        if segments.is_empty() {
            segments.push(Segment {
                duration: to - from,
                interference: MilliWatts::ZERO,
            });
        }
        segments
    }

    /// Whether any *other* transmission overlapped `[from, to]` with a
    /// coupled power above `floor` at the observer — the "collided"
    /// predicate for the paper's CPRR metric.
    pub fn was_collided(
        &self,
        subject: TxId,
        observer: NodeId,
        freq: Megahertz,
        from: SimTime,
        to: SimTime,
        floor: Dbm,
    ) -> bool {
        self.transmissions.iter().any(|t| {
            t.id != subject && t.tx_node != observer && t.overlap(from, to).is_some() && {
                let coupled = t.rx_power[observer].to_milliwatts()
                    * self.acr.leakage_factor(t.frequency.distance_to(freq));
                coupled.to_dbm() > floor
            }
        })
    }
}

/// One bit at 250 kb/s: 4 µs.
pub const BIT_DURATION: SimDuration = SimDuration::from_micros(4);

/// Samples bit errors over `segments` for a signal of `signal` dBm,
/// returning `(error_bits, total_bits)`.
///
/// Bits are allotted to segments proportionally to duration; the total is
/// the true bit count of the window (durations rounded per segment, which
/// is exact when segment boundaries fall on bit boundaries and off by at
/// most one bit otherwise).
pub fn sample_segment_errors<R: Rng + ?Sized>(
    rng: &mut R,
    segments: &[Segment],
    signal: Dbm,
    noise: MilliWatts,
    model: BerModel,
) -> (u32, u32) {
    let signal_mw = signal.to_milliwatts();
    let mut errors = 0u32;
    let mut bits = 0u32;
    for seg in segments {
        let n = (seg.duration.as_nanos() / BIT_DURATION.as_nanos()) as u32;
        if n == 0 {
            continue;
        }
        let sinr = nomc_phy::sinr::sinr_linear(signal_mw, seg.interference + noise);
        let ber = model.bit_error_rate(sinr);
        errors += nomc_phy::biterror::sample_bit_errors(rng, n, ber);
        bits += n;
    }
    (errors, bits)
}

/// Computes the probability that a sync header (preamble + SFD, 40 bits)
/// decodes, given its segments.
pub fn sync_success_probability(
    segments: &[Segment],
    signal: Dbm,
    noise: MilliWatts,
    model: BerModel,
) -> f64 {
    let signal_mw = signal.to_milliwatts();
    let mut p = 1.0;
    for seg in segments {
        let n = (seg.duration.as_nanos() / BIT_DURATION.as_nanos()) as u32;
        if n == 0 {
            continue;
        }
        let sinr = nomc_phy::sinr::sinr_linear(signal_mw, seg.interference + noise);
        p *= model.frame_success_probability(sinr, n);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::SeedableRng;

    fn mk_tx(
        id: TxId,
        node: NodeId,
        freq: f64,
        start_us: u64,
        end_us: u64,
        p: f64,
    ) -> Transmission {
        Transmission {
            id,
            tx_node: node,
            link: node,
            frequency: Megahertz::new(freq),
            start: SimTime::from_micros(start_us),
            mpdu_start: SimTime::from_micros(start_us + 192),
            end: SimTime::from_micros(end_us),
            seq: 0,
            forced: false,
            rx_power: vec![Dbm::new(p); 4],
        }
    }

    fn medium() -> Medium {
        Medium::new(
            AcrCurve::cc2420_calibrated(),
            Dbm::new(-98.0).to_milliwatts(),
        )
    }

    #[test]
    fn sensed_components_split_by_channel() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0)); // co-channel for 2460 observer
        m.add(mk_tx(2, 1, 2463.0, 0, 3000, -60.0)); // +3 MHz
        let now = SimTime::from_micros(1000);
        let (co, inter) = m.sensed_components(3, Megahertz::new(2460.0), now);
        assert!((co.to_dbm().value() - (-60.0)).abs() < 0.01);
        // 20 dB rejection at 3 MHz.
        assert!((inter.to_dbm().value() - (-80.0)).abs() < 0.01);
    }

    #[test]
    fn own_transmissions_excluded() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -50.0));
        let (co, inter) = m.sensed_components(0, Megahertz::new(2460.0), SimTime::from_micros(1));
        assert_eq!(co, MilliWatts::ZERO);
        assert_eq!(inter, MilliWatts::ZERO);
    }

    #[test]
    fn inactive_transmissions_not_sensed() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 100, -50.0));
        let total = m.sensed_total(1, Megahertz::new(2460.0), SimTime::from_micros(200));
        assert!((total.to_dbm().value() - (-98.0)).abs() < 0.1, "only noise");
    }

    #[test]
    fn segments_partition_the_window() {
        let mut m = medium();
        // Subject: [0, 3000]; interferer A: [500, 1200]; B: [1000, 4000].
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        m.add(mk_tx(2, 1, 2460.0, 500, 1200, -70.0));
        m.add(mk_tx(3, 2, 2460.0, 1000, 4000, -70.0));
        let segs = m.interference_segments(
            1,
            3,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        let total: SimDuration = segs.iter().map(|s| s.duration).sum();
        assert_eq!(total, SimDuration::from_micros(3000));
        // Expect 5 segments: [0,500) quiet, [500,1000) A, [1000,1200) A+B,
        // [1200,3000) B.
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].interference, MilliWatts::ZERO);
        assert!(segs[2].interference > segs[1].interference);
        assert!((segs[2].interference.to_dbm().value() - (-66.99)).abs() < 0.05);
    }

    #[test]
    fn quiet_window_single_segment() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        let segs = m.interference_segments(
            1,
            1,
            Megahertz::new(2460.0),
            SimTime::ZERO,
            SimTime::from_micros(3000),
        );
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interference, MilliWatts::ZERO);
    }

    #[test]
    fn ended_interferers_still_visible_for_late_queries() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 500, -70.0)); // ends early
        m.add(mk_tx(2, 1, 2460.0, 100, 3000, -60.0)); // subject
        let segs = m.interference_segments(
            2,
            2,
            Megahertz::new(2460.0),
            SimTime::from_micros(100),
            SimTime::from_micros(3000),
        );
        assert!(
            segs[0].interference > MilliWatts::ZERO,
            "early overlap seen"
        );
    }

    #[test]
    fn history_pruned_after_retention() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 100, -70.0));
        assert_eq!(m.tracked(), 1);
        m.add(mk_tx(2, 1, 2460.0, 50_000, 53_000, -70.0));
        assert_eq!(m.tracked(), 1, "stale entry pruned on add");
        assert!(m.get(1).is_none());
        assert!(m.get(2).is_some());
    }

    #[test]
    fn collided_predicate() {
        let mut m = medium();
        m.add(mk_tx(1, 0, 2460.0, 0, 3000, -60.0));
        m.add(mk_tx(2, 1, 2463.0, 1000, 2000, -60.0));
        let f = Megahertz::new(2460.0);
        let floor = Dbm::new(-100.0);
        assert!(m.was_collided(1, 3, f, SimTime::ZERO, SimTime::from_micros(3000), floor));
        // Adjacent-channel overlaps count too (coupled power −80 dBm).
        assert!(m.was_collided(
            2,
            3,
            Megahertz::new(2463.0),
            SimTime::from_micros(1500),
            SimTime::from_micros(1800),
            floor
        ));
        // No overlap in the queried window → not collided.
        assert!(!m.was_collided(
            1,
            3,
            f,
            SimTime::from_micros(3500),
            SimTime::from_micros(4000),
            floor
        ));
    }

    #[test]
    fn segment_error_sampling_scales_with_sinr() {
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let noise = Dbm::new(-98.0).to_milliwatts();
        let quiet = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: MilliWatts::ZERO,
        }];
        let (errs, bits) = sample_segment_errors(
            &mut rng,
            &quiet,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert_eq!(bits, 744);
        assert_eq!(errs, 0, "38 dB SNR is error-free");

        let jammed = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: Dbm::new(-57.0).to_milliwatts(),
        }];
        let (errs, _) = sample_segment_errors(
            &mut rng,
            &jammed,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert!(errs >= 1, "-3 dB SINR must corrupt the frame, got {errs}");
        let destroyed = [Segment {
            duration: SimDuration::from_micros(2976),
            interference: Dbm::new(-50.0).to_milliwatts(),
        }];
        let (errs, _) = sample_segment_errors(
            &mut rng,
            &destroyed,
            Dbm::new(-60.0),
            noise,
            BerModel::Oqpsk802154,
        );
        assert!(errs > 100, "-10 dB SINR must corrupt heavily, got {errs}");
    }

    #[test]
    fn sync_probability_extremes() {
        let noise = Dbm::new(-98.0).to_milliwatts();
        let quiet = [Segment {
            duration: SimDuration::from_micros(160),
            interference: MilliWatts::ZERO,
        }];
        let p = sync_success_probability(&quiet, Dbm::new(-60.0), noise, BerModel::Oqpsk802154);
        assert!(p > 0.9999);
        let jammed = [Segment {
            duration: SimDuration::from_micros(160),
            interference: Dbm::new(-50.0).to_milliwatts(),
        }];
        let p = sync_success_probability(&jammed, Dbm::new(-60.0), noise, BerModel::Oqpsk802154);
        assert!(p < 0.05, "got {p}");
    }
}
