//! Run results: per-link counters, per-network aggregates, and the
//! paper's derived metrics (throughput, PRR, CPRR).

use nomc_mac::MacStats;
use nomc_units::{Dbm, Megahertz, SimDuration, SimTime};

/// The bit-error profile of one corrupted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorRecord {
    /// Number of erroneous bits.
    pub error_bits: u32,
    /// Total PSDU bits.
    pub total_bits: u32,
    /// Error positions (bit indices in the PSDU), when recording was
    /// enabled.
    pub positions: Option<Vec<u32>>,
}

impl ErrorRecord {
    /// Fraction of bits in error, in `[0, 1]`.
    pub fn error_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            f64::from(self.error_bits) / f64::from(self.total_bits)
        }
    }
}

/// How a measured transmission ended at its intended receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Decoded successfully.
    Received,
    /// Synced, but the FCS failed.
    CrcFailed,
    /// The preamble never decoded (receiver idle but SINR too low, or
    /// signal below sensitivity).
    SyncMissed,
    /// The intended receiver was busy (receiving another frame or
    /// transmitting).
    ReceiverBusy,
}

/// One entry of the optional Fig. 3-style timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineRecord {
    /// Global link index.
    pub link: usize,
    /// First symbol on air.
    pub start: SimTime,
    /// Last symbol on air.
    pub end: SimTime,
    /// Outcome at the intended receiver.
    pub outcome: TxOutcome,
    /// Whether another transmission overlapped it (collision).
    pub collided: bool,
}

/// Counters for one link, measured over the post-warmup window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkMetrics {
    /// Owning network (deployment order).
    pub network: usize,
    /// Index within the network.
    pub link_in_network: usize,
    /// Frames transmitted.
    pub sent: u64,
    /// Of those, forced out after CCA exhaustion.
    pub forced_sent: u64,
    /// Frames decoded by the intended receiver.
    pub received: u64,
    /// Frames whose preamble the intended receiver missed.
    pub sync_missed: u64,
    /// Frames that found the intended receiver busy.
    pub receiver_busy: u64,
    /// Frames that synced but failed the FCS.
    pub crc_failed: u64,
    /// Frames that overlapped another transmission.
    pub collided: u64,
    /// Collided frames nevertheless decoded.
    pub collided_received: u64,
    /// Retransmission attempts (acknowledged mode; included in `sent`).
    pub retransmissions: u64,
    /// Frames abandoned after exhausting retries (acknowledged mode).
    pub abandoned: u64,
    /// Duplicate deliveries suppressed at the receiver (ACK lost).
    pub duplicates: u64,
    /// Bit-error profiles of CRC-failed frames.
    pub error_records: Vec<ErrorRecord>,
}

impl LinkMetrics {
    /// Packet receive rate: received / sent (`None` when nothing sent).
    pub fn prr(&self) -> Option<f64> {
        if self.sent == 0 {
            None
        } else {
            Some(self.received as f64 / self.sent as f64)
        }
    }

    /// Collided-packet receive rate (the paper's CPRR).
    pub fn cprr(&self) -> Option<f64> {
        if self.collided == 0 {
            None
        } else {
            Some(self.collided_received as f64 / self.collided as f64)
        }
    }

    /// Received packets per second.
    pub fn throughput(&self, measured: SimDuration) -> f64 {
        self.received as f64 / measured.as_secs_f64()
    }

    /// Sent packets per second.
    pub fn send_rate(&self, measured: SimDuration) -> f64 {
        self.sent as f64 / measured.as_secs_f64()
    }
}

/// Aggregate over one network's links.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkMetrics {
    /// Deployment index.
    pub index: usize,
    /// Channel frequency.
    pub frequency: Megahertz,
    /// Summed counters.
    pub totals: LinkMetrics,
}

impl NetworkMetrics {
    /// Received packets per second across the network.
    pub fn throughput(&self, measured: SimDuration) -> f64 {
        self.totals.throughput(measured)
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Length of the measured window (duration − warmup).
    pub measured: SimDuration,
    /// Per-link counters, in deployment order (network-major).
    pub links: Vec<LinkMetrics>,
    /// Channel frequency per network.
    pub network_frequencies: Vec<Megahertz>,
    /// MAC counters per transmitter node (one per link).
    pub mac_stats: Vec<MacStats>,
    /// Transmit power per transmitter node (one per link), for energy
    /// accounting.
    pub tx_powers: Vec<Dbm>,
    /// Final CCA threshold per transmitter node (after clamping).
    pub final_thresholds: Vec<Dbm>,
    /// Optional transmission timeline.
    pub timeline: Vec<TimelineRecord>,
    /// Optional structured event trace.
    pub trace: Vec<crate::trace::TraceRecord>,
    /// Total events the engine dispatched (all kinds, whole run
    /// including warmup and drain) — the denominator of events/sec.
    pub events: u64,
}

impl SimResult {
    /// Aggregates links into per-network metrics, in deployment order.
    pub fn networks(&self) -> Vec<NetworkMetrics> {
        let mut out: Vec<NetworkMetrics> = self
            .network_frequencies
            .iter()
            .enumerate()
            .map(|(i, &frequency)| NetworkMetrics {
                index: i,
                frequency,
                totals: LinkMetrics {
                    network: i,
                    ..LinkMetrics::default()
                },
            })
            .collect();
        for l in &self.links {
            let t = &mut out[l.network].totals;
            t.sent += l.sent;
            t.forced_sent += l.forced_sent;
            t.received += l.received;
            t.sync_missed += l.sync_missed;
            t.receiver_busy += l.receiver_busy;
            t.crc_failed += l.crc_failed;
            t.collided += l.collided;
            t.collided_received += l.collided_received;
            t.retransmissions += l.retransmissions;
            t.abandoned += l.abandoned;
            t.duplicates += l.duplicates;
            t.error_records.extend(l.error_records.iter().cloned());
        }
        out
    }

    /// Throughput of network `i` in packets/s.
    pub fn network_throughput(&self, i: usize) -> f64 {
        self.networks()[i].throughput(self.measured)
    }

    /// Overall (all-network) throughput in packets/s.
    pub fn total_throughput(&self) -> f64 {
        self.links.iter().map(|l| l.received).sum::<u64>() as f64 / self.measured.as_secs_f64()
    }

    /// Overall PRR across all links.
    pub fn total_prr(&self) -> Option<f64> {
        let sent: u64 = self.links.iter().map(|l| l.sent).sum();
        let received: u64 = self.links.iter().map(|l| l.received).sum();
        if sent == 0 {
            None
        } else {
            Some(received as f64 / sent as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(network: usize, sent: u64, received: u64) -> LinkMetrics {
        LinkMetrics {
            network,
            sent,
            received,
            ..LinkMetrics::default()
        }
    }

    #[test]
    fn prr_and_throughput() {
        let l = link(0, 200, 150);
        assert_eq!(l.prr(), Some(0.75));
        assert!((l.throughput(SimDuration::from_secs(10)) - 15.0).abs() < 1e-9);
        assert_eq!(link(0, 0, 0).prr(), None);
    }

    #[test]
    fn cprr() {
        let l = LinkMetrics {
            collided: 100,
            collided_received: 97,
            ..LinkMetrics::default()
        };
        assert_eq!(l.cprr(), Some(0.97));
        assert_eq!(LinkMetrics::default().cprr(), None);
    }

    #[test]
    fn error_fraction() {
        let r = ErrorRecord {
            error_bits: 80,
            total_bits: 800,
            positions: None,
        };
        assert!((r.error_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn network_aggregation() {
        let result = SimResult {
            measured: SimDuration::from_secs(10),
            links: vec![link(0, 100, 90), link(0, 100, 80), link(1, 100, 70)],
            network_frequencies: vec![Megahertz::new(2458.0), Megahertz::new(2461.0)],
            mac_stats: vec![],
            tx_powers: vec![],
            final_thresholds: vec![],
            timeline: vec![],
            trace: vec![],
            events: 0,
        };
        let nets = result.networks();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0].totals.received, 170);
        assert!((result.network_throughput(0) - 17.0).abs() < 1e-9);
        assert!((result.total_throughput() - 24.0).abs() < 1e-9);
        assert_eq!(result.total_prr(), Some(0.8));
    }
}
