//! The discrete-event simulation engine.
//!
//! [`run`] executes a [`Scenario`] to completion and returns a
//! [`SimResult`]. The engine owns the event queue, the medium, and one
//! runtime record per node; it is single-threaded and fully deterministic
//! for a given scenario + seed (parallelism belongs at the sweep level —
//! each parameter point is an independent run).

use crate::events::{Event, EventQueue, NodeId, TxId};
use crate::medium::{self, Medium, Transmission};
use crate::metrics::{ErrorRecord, LinkMetrics, SimResult, TimelineRecord, TxOutcome};
use crate::rng::Xoshiro256StarStar;
use crate::scenario::{Scenario, ThresholdMode, TrafficModel};
use crate::trace::{TraceKind, TraceRecord};
use nomc_core::CcaAdjustor;
use nomc_mac::{CcaThresholdProvider, FixedThreshold, MacCommand, MacEngine, MacEvent, MacStats};
use nomc_radio::timing;
use nomc_rngcore::{Rng, SeedableRng};
use nomc_units::{Db, Dbm, Megahertz, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Extra simulated time after `duration` during which in-flight frames
/// may still complete (no new frames start).
const DRAIN: SimDuration = SimDuration::from_millis(20);

/// Period of the provider housekeeping tick.
const TICK_PERIOD: SimDuration = SimDuration::from_millis(250);

/// Runs `scenario` to completion.
///
/// # Panics
///
/// Panics if the scenario is internally inconsistent in a way
/// [`Scenario`]'s builder should have rejected (a bug, not an input
/// condition).
pub fn run(scenario: &Scenario) -> SimResult {
    Engine::new(scenario).run()
}

/// CCA-threshold provider dispatch (kept as an enum so nodes stay
/// `Clone`-free but simple).
#[derive(Debug)]
enum Provider {
    Fixed(FixedThreshold),
    Dcn(CcaAdjustor),
}

impl Provider {
    fn threshold(&self, now: SimTime) -> Dbm {
        match self {
            Provider::Fixed(p) => p.threshold(now),
            Provider::Dcn(p) => p.threshold(now),
        }
    }

    fn on_cochannel_packet(&mut self, rssi: Dbm, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_cochannel_packet(rssi, now),
            Provider::Dcn(p) => p.on_cochannel_packet(rssi, now),
        }
    }

    fn on_power_sense(&mut self, power: Dbm, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_power_sense(power, now),
            Provider::Dcn(p) => p.on_power_sense(power, now),
        }
    }

    fn wants_power_sensing(&self, now: SimTime) -> bool {
        match self {
            Provider::Fixed(p) => p.wants_power_sensing(now),
            Provider::Dcn(p) => p.wants_power_sensing(now),
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_tick(now),
            Provider::Dcn(p) => p.on_tick(now),
        }
    }
}

/// An in-progress reception at one node.
#[derive(Debug, Clone, Copy)]
struct RxAttempt {
    tx_id: TxId,
    synced: bool,
}

/// Engine-side metadata for an in-flight transmission.
#[derive(Debug)]
struct TxMeta {
    measured: bool,
    link: usize,
    intended_rx: NodeId,
    /// The intended receiver could not even attempt sync (busy/TX).
    intended_busy: bool,
    /// Outcome recorded during decode (None until TxEnd processing).
    outcome: Option<TxOutcome>,
}

/// Per-node runtime state.
#[derive(Debug)]
struct Node {
    /// Global link index (for senders and receivers alike).
    link: usize,
    is_sender: bool,
    freq: Megahertz,
    tx_power: Dbm,
    mac: Option<MacEngine>,
    provider: Option<Provider>,
    oracle: bool,
    traffic: TrafficModel,
    stats: MacStats,
    rx: Option<RxAttempt>,
    transmitting: bool,
    next_interval_at: SimTime,
    /// `forced` flag carried from `BeginTransmit` to `TxStart`.
    forced_next: bool,
    seq: u32,
    /// Whether this node's network uses acknowledged transfers.
    acknowledged: bool,
    /// Data transmission we are awaiting an ACK for (senders).
    awaiting_ack: Option<TxId>,
    /// Most recent transmission id this node emitted (senders).
    last_tx: TxId,
    /// Sequence number of the last frame delivered here (receivers;
    /// duplicate suppression for lost ACKs).
    last_rx_seq: Option<u32>,
    /// Store-and-forward credits: frames delivered upstream and not yet
    /// forwarded (Forward traffic only).
    credits: u64,
    /// Forwarding sender is idle and waiting for a credit.
    wants_packet: bool,
}

struct Engine<'a> {
    sc: &'a Scenario,
    now: SimTime,
    queue: EventQueue,
    medium: Medium,
    nodes: Vec<Node>,
    /// Path loss (no shadowing) between node pairs.
    loss: Vec<Vec<Db>>,
    rng: Xoshiro256StarStar,
    next_tx_id: TxId,
    links: Vec<LinkMetrics>,
    /// Intended receiver node of each global link.
    link_rx: Vec<NodeId>,
    tx_meta: BTreeMap<TxId, TxMeta>,
    /// Upstream link → its forwarding sender node.
    forwarders: BTreeMap<usize, NodeId>,
    timeline: Vec<TimelineRecord>,
    airtime: SimDuration,
    sync_dur: SimDuration,
    mpdu_offset: SimDuration,
    /// In-flight ACK frames: ack tx id → (acked data tx id, its sender).
    acks: BTreeMap<TxId, (TxId, NodeId)>,
    ack_airtime: SimDuration,
    trace: Vec<TraceRecord>,
}

impl<'a> Engine<'a> {
    fn new(sc: &'a Scenario) -> Self {
        let mut nodes = Vec::new();
        let mut links = Vec::new();
        let mut link_rx = Vec::new();
        let mut positions = Vec::new();
        for (ni, network) in sc.deployment.networks.iter().enumerate() {
            let behavior = &sc.behaviors[ni];
            for (li, link) in network.links.iter().enumerate() {
                let global = links.len();
                let provider = match &behavior.threshold {
                    ThresholdMode::Fixed(level) | ThresholdMode::FixedOracle(level) => {
                        Provider::Fixed(FixedThreshold::new(*level))
                    }
                    ThresholdMode::Dcn(cfg) | ThresholdMode::DcnOracle(cfg) => {
                        Provider::Dcn(CcaAdjustor::new(*cfg, sc.radio.default_cca_threshold))
                    }
                };
                nodes.push(Node {
                    link: global,
                    is_sender: true,
                    freq: network.frequency,
                    tx_power: link.tx_power,
                    mac: Some(MacEngine::new(behavior.mac)),
                    provider: Some(provider),
                    oracle: behavior.threshold.is_oracle(),
                    traffic: behavior.traffic,
                    stats: MacStats::new(),
                    rx: None,
                    transmitting: false,
                    next_interval_at: SimTime::ZERO,
                    forced_next: false,
                    seq: 0,
                    acknowledged: behavior.mac.acknowledged,
                    awaiting_ack: None,
                    last_tx: 0,
                    last_rx_seq: None,
                    credits: 0,
                    wants_packet: false,
                });
                positions.push(link.tx);
                nodes.push(Node {
                    link: global,
                    is_sender: false,
                    freq: network.frequency,
                    tx_power: link.tx_power,
                    mac: None,
                    provider: None,
                    oracle: false,
                    traffic: behavior.traffic,
                    stats: MacStats::new(),
                    rx: None,
                    transmitting: false,
                    next_interval_at: SimTime::ZERO,
                    forced_next: false,
                    seq: 0,
                    acknowledged: behavior.mac.acknowledged,
                    awaiting_ack: None,
                    last_tx: 0,
                    last_rx_seq: None,
                    credits: 0,
                    wants_packet: false,
                });
                positions.push(link.rx);
                link_rx.push(nodes.len() - 1);
                links.push(LinkMetrics {
                    network: ni,
                    link_in_network: li,
                    ..LinkMetrics::default()
                });
            }
        }
        // Per-link traffic overrides (senders are at even node indices:
        // node 2·link is the sender of global link `link`).
        let mut forwarders: BTreeMap<usize, NodeId> = BTreeMap::new();
        for &(link, traffic) in &sc.link_traffic {
            let sender = link * 2;
            nodes[sender].traffic = traffic;
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.is_sender {
                if let TrafficModel::Forward { from_link } = node.traffic {
                    forwarders.insert(from_link, i);
                }
            }
        }
        let n = nodes.len();
        let mut loss = vec![vec![Db::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    loss[i][j] = sc
                        .propagation
                        .path_loss
                        .loss(positions[i].distance_to(positions[j]));
                }
            }
        }
        let medium = Medium::new(sc.propagation.acr.clone(), sc.propagation.noise.power());
        let airtime = timing::airtime(sc.frame.ppdu_bytes());
        Engine {
            sc,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            medium,
            nodes,
            loss,
            rng: Xoshiro256StarStar::seed_from_u64(sc.seed),
            next_tx_id: 1,
            links,
            link_rx,
            tx_meta: BTreeMap::new(),
            forwarders,
            timeline: Vec::new(),
            airtime,
            sync_dur: timing::sync_header_duration(),
            mpdu_offset: timing::BYTE * u64::from(timing::PPDU_HEADER_BYTES),
            acks: BTreeMap::new(),
            // Imm-ACK: 5-byte MPDU behind the 6-byte PPDU header.
            ack_airtime: timing::airtime(11),
            trace: Vec::new(),
        }
    }

    /// Appends a trace record when tracing is enabled.
    fn trace(&mut self, kind: TraceKind) {
        if self.sc.record_trace {
            self.trace.push(TraceRecord { at: self.now, kind });
        }
    }

    fn run(mut self) -> SimResult {
        self.bootstrap();
        let deadline = SimTime::ZERO + self.sc.duration + DRAIN;
        while let Some((t, ev)) = self.queue.pop() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.dispatch(ev);
        }
        self.finalize()
    }

    fn bootstrap(&mut self) {
        let sender_ids: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_sender)
            .collect();
        for id in sender_ids {
            // Small random start jitter desynchronizes the saturated
            // sources, like staggered mote boot times.
            let jitter = SimDuration::from_micros(self.rng.gen_range(0..5000));
            let start = SimTime::ZERO + jitter;
            self.nodes[id].next_interval_at = start;
            if matches!(self.nodes[id].traffic, TrafficModel::Forward { .. }) {
                // Forwarders wake when their first credit arrives.
                self.nodes[id].wants_packet = true;
            } else {
                self.queue.schedule(start, Event::PacketReady(id));
            }
            self.queue.schedule(start, Event::ProviderTick(id));
            if self.provider_wants_sensing(id, start) {
                self.queue.schedule(start, Event::PowerSense(id));
            }
        }
    }

    fn provider_wants_sensing(&self, id: NodeId, now: SimTime) -> bool {
        self.nodes[id]
            .provider
            .as_ref()
            .is_some_and(|p| p.wants_power_sensing(now))
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::PacketReady(n) => self.on_packet_ready(n),
            Event::BackoffExpired(n) => self.feed_mac(n, MacEvent::BackoffExpired),
            Event::CcaDone(n) => self.on_cca_done(n),
            Event::TxStart(n) => self.on_tx_start(n),
            Event::TxEnd(n, id) => self.on_tx_end(n, id),
            Event::SyncDone(n, id) => self.on_sync_done(n, id),
            Event::PowerSense(n) => self.on_power_sense(n),
            Event::ProviderTick(n) => self.on_provider_tick(n),
            Event::AckStart(n, parent) => self.on_ack_start(n, parent),
            Event::AckTimeout(n, parent) => self.on_ack_timeout(n, parent),
        }
    }

    fn on_packet_ready(&mut self, n: NodeId) {
        if self.now >= SimTime::ZERO + self.sc.duration {
            return; // no new frames after the run ends
        }
        let node = &mut self.nodes[n];
        node.stats.enqueued += 1;
        // A new frame gets a new sequence number; retransmissions of the
        // same frame (ACK mode) keep it.
        node.seq += 1;
        debug_assert!(node.mac.as_ref().is_some_and(MacEngine::is_idle));
        self.feed_mac(n, MacEvent::PacketReady);
    }

    fn feed_mac(&mut self, n: NodeId, ev: MacEvent) {
        let node = &mut self.nodes[n];
        let cmd = node
            .mac
            .as_mut()
            .expect("feed_mac on a receiver node")
            .handle(ev, &mut self.rng);
        self.apply_command(n, cmd);
    }

    fn apply_command(&mut self, n: NodeId, cmd: MacCommand) {
        match cmd {
            MacCommand::SetBackoffTimer(d) => {
                self.queue.schedule(self.now + d, Event::BackoffExpired(n));
            }
            MacCommand::PerformCca => {
                let d = self.nodes[n]
                    .mac
                    .as_ref()
                    .expect("sender")
                    .params()
                    .cca_duration;
                self.queue.schedule(self.now + d, Event::CcaDone(n));
            }
            MacCommand::BeginTransmit { forced } => {
                let turnaround = self.nodes[n]
                    .mac
                    .as_ref()
                    .expect("sender")
                    .params()
                    .turnaround;
                // The radio switches to TX: abort any reception in progress.
                self.nodes[n].rx = None;
                self.nodes[n].forced_next = forced;
                self.queue
                    .schedule(self.now + turnaround, Event::TxStart(n));
            }
            MacCommand::DeclareFailure => {
                self.nodes[n].stats.access_failures += 1;
                self.schedule_next_packet(n);
            }
            MacCommand::CompletePacket => {
                self.schedule_next_packet(n);
            }
            MacCommand::WaitForAck(d) => {
                let parent = self.nodes[n].last_tx;
                self.nodes[n].awaiting_ack = Some(parent);
                self.queue
                    .schedule(self.now + d, Event::AckTimeout(n, parent));
            }
            MacCommand::AbandonPacket => {
                let node = &mut self.nodes[n];
                node.stats.abandoned += 1;
                let link = node.link;
                if self.in_measured_window() {
                    self.links[link].abandoned += 1;
                }
                self.schedule_next_packet(n);
            }
        }
    }

    /// Whether `now` falls inside the measurement window.
    fn in_measured_window(&self) -> bool {
        let t0 = SimTime::ZERO + self.sc.warmup;
        let t1 = SimTime::ZERO + self.sc.duration;
        self.now >= t0 && self.now < t1
    }

    fn schedule_next_packet(&mut self, n: NodeId) {
        let node = &mut self.nodes[n];
        let at = match node.traffic {
            TrafficModel::Saturated => {
                self.now
                    + node
                        .mac
                        .as_ref()
                        .expect("sender")
                        .params()
                        .post_tx_processing
            }
            TrafficModel::Interval(period) => {
                // Drift-free pacing; if the service time exceeded the
                // period, catch up to the next slot after `now`.
                let mut t = node.next_interval_at + period;
                while t <= self.now {
                    t += period;
                }
                node.next_interval_at = t;
                t
            }
            TrafficModel::Forward { .. } => {
                if node.credits > 0 {
                    node.credits -= 1;
                    let delay = node
                        .mac
                        .as_ref()
                        .expect("sender")
                        .params()
                        .post_tx_processing;
                    self.now + delay
                } else {
                    node.wants_packet = true;
                    return;
                }
            }
        };
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::PacketReady(n));
        }
    }

    fn on_cca_done(&mut self, n: NodeId) {
        // Let time-based threshold rules run before the read.
        if let Some(p) = self.nodes[n].provider.as_mut() {
            p.on_tick(self.now);
        }
        let node = &self.nodes[n];
        let (co, inter) = self.medium.sensed_components(n, node.freq, self.now);
        let noise = self.medium.noise();
        let sensed = if node.oracle {
            // §VII-C oracle: only the co-channel component counts.
            co + noise
        } else {
            co + inter + noise
        };
        let reading = self.sc.radio.rssi.read(sensed.to_dbm());
        let threshold = self.sc.radio.clamp_cca_threshold(
            node.provider
                .as_ref()
                .expect("sender has provider")
                .threshold(self.now),
        );
        let clear = reading < threshold;
        self.trace(TraceKind::Cca {
            node: n,
            sensed_dbm: reading.value(),
            threshold_dbm: threshold.value(),
            clear,
        });
        let node = &mut self.nodes[n];
        if clear {
            node.stats.cca_clear += 1;
        } else {
            node.stats.cca_busy += 1;
        }
        self.feed_mac(n, MacEvent::CcaResult { clear });
    }

    fn on_tx_start(&mut self, n: NodeId) {
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let node_count = self.nodes.len();
        let (freq, tx_power, link, forced, seq) = {
            let node = &mut self.nodes[n];
            node.transmitting = true;
            node.rx = None;
            node.last_tx = id;
            (
                node.freq,
                node.tx_power,
                node.link,
                node.forced_next,
                node.seq,
            )
        };
        // Per-observer received powers with fresh per-packet shadowing.
        let mut rx_power = Vec::with_capacity(node_count);
        for o in 0..node_count {
            if o == n {
                rx_power.push(tx_power);
            } else {
                let shadow = self.sc.propagation.shadowing.sample(&mut self.rng);
                rx_power.push(tx_power - self.loss[n][o] + shadow);
            }
        }
        let start = self.now;
        let end = start + self.airtime;
        let mpdu_start = start + self.mpdu_offset;
        let measured = {
            let t0 = SimTime::ZERO + self.sc.warmup;
            let t1 = SimTime::ZERO + self.sc.duration;
            start >= t0 && start < t1
        };
        let intended_rx = self.link_rx[link];
        // Offer sync to candidate observers.
        let sync_at = start + self.sync_dur;
        #[allow(clippy::needless_range_loop)] // index is reused for rx_power + scheduling
        for o in 0..node_count {
            if o == n {
                continue;
            }
            let obs = &self.nodes[o];
            if obs.transmitting || obs.rx.is_some() {
                continue;
            }
            let cfd = freq.distance_to(obs.freq);
            if !self.sc.radio.capture_model.is_sync_candidate(cfd) {
                continue;
            }
            let coupled = rx_power[o] - self.medium.acr().rejection(cfd);
            if !self
                .sc
                .radio
                .capture_model
                .clears_sensitivity(coupled, self.sc.radio.sensitivity)
            {
                continue;
            }
            self.nodes[o].rx = Some(RxAttempt {
                tx_id: id,
                synced: false,
            });
            self.queue.schedule(sync_at, Event::SyncDone(o, id));
        }
        let intended_busy = {
            let r = &self.nodes[intended_rx];
            let locked_to_us = matches!(r.rx, Some(a) if a.tx_id == id);
            !locked_to_us && (r.transmitting || r.rx.is_some())
        };
        self.tx_meta.insert(
            id,
            TxMeta {
                measured,
                link,
                intended_rx,
                intended_busy,
                outcome: None,
            },
        );
        if measured {
            self.links[link].sent += 1;
            if forced {
                self.links[link].forced_sent += 1;
            }
            self.nodes[n].stats.transmitted += 1;
            if forced {
                self.nodes[n].stats.forced_transmissions += 1;
            }
            let retrying = self.nodes[n]
                .mac
                .as_ref()
                .is_some_and(|m| m.retry_count() > 0);
            if retrying {
                self.links[link].retransmissions += 1;
                self.nodes[n].stats.retransmissions += 1;
            }
        }
        self.medium.add(Transmission {
            id,
            tx_node: n,
            link,
            frequency: freq,
            start,
            mpdu_start,
            end,
            seq,
            forced,
            rx_power,
        });
        self.trace(TraceKind::TxStart {
            node: n,
            tx: id,
            seq,
            forced,
        });
        self.queue.schedule(end, Event::TxEnd(n, id));
    }

    fn on_sync_done(&mut self, o: NodeId, tx_id: TxId) {
        let Some(attempt) = self.nodes[o].rx else {
            return;
        };
        if attempt.tx_id != tx_id || attempt.synced || self.nodes[o].transmitting {
            return;
        }
        let Some(t) = self.medium.get(tx_id) else {
            self.nodes[o].rx = None;
            return;
        };
        let cfd = t.frequency.distance_to(self.nodes[o].freq);
        // The preamble correlator detects its known sequence several dB
        // below the payload decoding threshold (sync_margin).
        let coupled = t.rx_power[o] - self.medium.acr().rejection(cfd) + self.sc.radio.sync_margin;
        let segments = self.medium.interference_segments(
            tx_id,
            o,
            self.nodes[o].freq,
            t.start,
            t.start + self.sync_dur,
        );
        let p = medium::sync_success_probability(
            &segments,
            coupled,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        if self.rng.gen::<f64>() < p {
            self.nodes[o].rx = Some(RxAttempt {
                tx_id,
                synced: true,
            });
        } else {
            self.nodes[o].rx = None;
        }
    }

    fn on_tx_end(&mut self, n: NodeId, tx_id: TxId) {
        // ACK frames complete differently: the acking receiver goes idle
        // and the original sender tries to decode the ACK.
        if let Some((parent, sender)) = self.acks.remove(&tx_id) {
            self.nodes[n].transmitting = false;
            self.try_deliver_ack(tx_id, parent, sender);
            return;
        }
        // 1. The transmitter returns to idle and paces its next frame.
        self.nodes[n].transmitting = false;
        self.feed_mac(n, MacEvent::TxDone);

        // 2. Locked receivers decode.
        let receivers: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&o| {
                self.nodes[o]
                    .rx
                    .is_some_and(|r| r.tx_id == tx_id && r.synced)
            })
            .collect();
        for o in receivers {
            self.decode(o, tx_id);
            self.nodes[o].rx = None;
        }

        // 3. Collision bookkeeping + timeline for the intended receiver.
        let Some(meta) = self.tx_meta.remove(&tx_id) else {
            return;
        };
        let Some(t) = self.medium.get(tx_id) else {
            return;
        };
        let (start, end) = (t.start, t.end);
        let intended_freq = self.nodes[meta.intended_rx].freq;
        let collided = self.medium.was_collided(
            tx_id,
            meta.intended_rx,
            intended_freq,
            start,
            end,
            self.sc.collision_floor,
        );
        let outcome = meta.outcome.unwrap_or(if meta.intended_busy {
            TxOutcome::ReceiverBusy
        } else {
            TxOutcome::SyncMissed
        });
        if meta.measured {
            let lm = &mut self.links[meta.link];
            match outcome {
                TxOutcome::Received => {}
                TxOutcome::CrcFailed => {}
                TxOutcome::SyncMissed => lm.sync_missed += 1,
                TxOutcome::ReceiverBusy => lm.receiver_busy += 1,
            }
            if collided {
                lm.collided += 1;
                if outcome == TxOutcome::Received {
                    lm.collided_received += 1;
                }
            }
            if self.sc.record_timeline {
                self.timeline.push(TimelineRecord {
                    link: meta.link,
                    start,
                    end,
                    outcome,
                    collided,
                });
            }
            let outcome_str = match outcome {
                TxOutcome::Received => "received",
                TxOutcome::CrcFailed => "crc_failed",
                TxOutcome::SyncMissed => "sync_missed",
                TxOutcome::ReceiverBusy => "receiver_busy",
            };
            self.trace(TraceKind::Outcome {
                tx: tx_id,
                receiver: meta.intended_rx,
                outcome: outcome_str,
            });
        }
    }

    /// Decodes transmission `tx_id` at node `o` (which stayed locked to
    /// it until the end).
    fn decode(&mut self, o: NodeId, tx_id: TxId) {
        let Some(t) = self.medium.get(tx_id) else {
            return;
        };
        let obs_freq = self.nodes[o].freq;
        let cfd = t.frequency.distance_to(obs_freq);
        // Foreign-channel captures (802.11b-like mode only) waste the
        // receiver's time but never yield a usable frame.
        if cfd.value() >= 0.5 {
            return;
        }
        let signal = t.rx_power[o];
        let (link, measured, intended_rx) = match self.tx_meta.get(&tx_id) {
            Some(m) => (m.link, m.measured, m.intended_rx),
            None => (t.link, false, usize::MAX),
        };
        let segments = self
            .medium
            .interference_segments(tx_id, o, obs_freq, t.mpdu_start, t.end);
        let (errors, bits) = medium::sample_segment_errors(
            &mut self.rng,
            &segments,
            signal,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        let decoded = if errors == 0 {
            true
        } else if self.sc.record_error_positions {
            // Full-fidelity path: flip sampled bit positions in the real
            // MPDU image and run the real FCS check (a corrupted frame
            // passes CRC only with probability ≈ 2⁻¹⁶).
            let tx_node_seq = t.seq;
            let src = t.tx_node as u32;
            let mut mpdu = self.sc.frame.build_mpdu(src, tx_node_seq);
            let positions =
                nomc_phy::biterror::sample_error_positions(&mut self.rng, bits, errors.min(bits));
            for &p in &positions {
                let byte = (p / 8) as usize;
                if byte < mpdu.len() {
                    mpdu[byte] ^= 1 << (p % 8);
                }
            }
            let ok = nomc_radio::crc::verify_fcs(&mpdu);
            if !ok && o == intended_rx && measured {
                self.links[link].error_records.push(ErrorRecord {
                    error_bits: errors.min(bits),
                    total_bits: bits,
                    positions: Some(positions),
                });
            }
            ok
        } else {
            if o == intended_rx && measured {
                self.links[link].error_records.push(ErrorRecord {
                    error_bits: errors.min(bits),
                    total_bits: bits,
                    positions: None,
                });
            }
            false
        };
        if o == intended_rx {
            if let Some(m) = self.tx_meta.get_mut(&tx_id) {
                m.outcome = Some(if decoded {
                    TxOutcome::Received
                } else {
                    TxOutcome::CrcFailed
                });
            }
            let duplicate = decoded && self.nodes[o].last_rx_seq == Some(t.seq);
            if decoded {
                let seq = t.seq;
                self.nodes[o].last_rx_seq = Some(seq);
            }
            if measured {
                if decoded && duplicate {
                    self.links[link].duplicates += 1;
                } else if decoded {
                    self.links[link].received += 1;
                } else {
                    self.links[link].crc_failed += 1;
                }
            }
            if decoded && !duplicate {
                if let Some(&f) = self.forwarders.get(&link) {
                    let delay = self.nodes[f]
                        .mac
                        .as_ref()
                        .expect("forwarder is a sender")
                        .params()
                        .post_tx_processing;
                    self.nodes[f].credits += 1;
                    if self.nodes[f].wants_packet {
                        self.nodes[f].wants_packet = false;
                        self.nodes[f].credits -= 1;
                        let at = self.now + delay;
                        if at < SimTime::ZERO + self.sc.duration {
                            self.queue.schedule(at, Event::PacketReady(f));
                        }
                    }
                }
            }
            // Acknowledged transfers: the receiver turns around and emits
            // an Imm-ACK (also for duplicates — their ACK was lost).
            if decoded && self.nodes[o].acknowledged {
                let turnaround = timing::TURNAROUND;
                self.nodes[o].transmitting = true;
                self.nodes[o].rx = None;
                self.queue
                    .schedule(self.now + turnaround, Event::AckStart(o, tx_id));
            }
        }
        if decoded {
            // Any successfully decoded co-channel frame feeds the
            // observer's CCA-threshold provider with its RSSI (the
            // paper's free information source).
            let rssi = self.sc.radio.rssi.read(signal);
            let now = self.now;
            if let Some(p) = self.nodes[o].provider.as_mut() {
                p.on_cochannel_packet(rssi, now);
            }
        }
    }

    /// The acking receiver starts emitting the Imm-ACK for `parent`.
    fn on_ack_start(&mut self, o: NodeId, parent: TxId) {
        let Some(parent_tx) = self.medium.get(parent) else {
            self.nodes[o].transmitting = false;
            return;
        };
        let sender = parent_tx.tx_node;
        let seq = parent_tx.seq;
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let (freq, tx_power, link) = {
            let node = &self.nodes[o];
            (node.freq, node.tx_power, node.link)
        };
        let node_count = self.nodes.len();
        let mut rx_power = Vec::with_capacity(node_count);
        for other in 0..node_count {
            if other == o {
                rx_power.push(tx_power);
            } else {
                let shadow = self.sc.propagation.shadowing.sample(&mut self.rng);
                rx_power.push(tx_power - self.loss[o][other] + shadow);
            }
        }
        let start = self.now;
        let end = start + self.ack_airtime;
        self.medium.add(Transmission {
            id,
            tx_node: o,
            link,
            frequency: freq,
            start,
            mpdu_start: start + self.mpdu_offset,
            end,
            seq,
            forced: false,
            rx_power,
        });
        self.acks.insert(id, (parent, sender));
        self.queue.schedule(end, Event::TxEnd(o, id));
    }

    /// At ACK airtime end: does the original sender decode it?
    fn try_deliver_ack(&mut self, ack_id: TxId, parent: TxId, sender: NodeId) {
        if self.nodes[sender].awaiting_ack != Some(parent) || self.nodes[sender].transmitting {
            return;
        }
        let Some(ack) = self.medium.get(ack_id) else {
            return;
        };
        // Co-channel, so no filter rejection; the preamble correlator's
        // margin applies as for any sync.
        let signal = ack.rx_power[sender];
        let freq = self.nodes[sender].freq;
        let sync_segments = self.medium.interference_segments(
            ack_id,
            sender,
            freq,
            ack.start,
            ack.start + self.sync_dur,
        );
        let p_sync = medium::sync_success_probability(
            &sync_segments,
            signal + self.sc.radio.sync_margin,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        let data_segments =
            self.medium
                .interference_segments(ack_id, sender, freq, ack.mpdu_start, ack.end);
        let (errors, _) = medium::sample_segment_errors(
            &mut self.rng,
            &data_segments,
            signal,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        let decoded = errors == 0 && self.rng.gen::<f64>() < p_sync;
        if decoded {
            self.nodes[sender].awaiting_ack = None;
            self.trace(TraceKind::AckDelivered { tx: parent, sender });
            self.feed_mac(sender, MacEvent::AckResult { acked: true });
        }
    }

    /// `macAckWaitDuration` expired without the ACK arriving.
    fn on_ack_timeout(&mut self, n: NodeId, parent: TxId) {
        if self.nodes[n].awaiting_ack == Some(parent) {
            self.nodes[n].awaiting_ack = None;
            self.trace(TraceKind::AckTimedOut {
                tx: parent,
                sender: n,
            });
            self.feed_mac(n, MacEvent::AckResult { acked: false });
        }
    }

    fn on_power_sense(&mut self, n: NodeId) {
        let node = &self.nodes[n];
        let wants = node
            .provider
            .as_ref()
            .is_some_and(|p| p.wants_power_sensing(self.now));
        if !wants {
            return;
        }
        if !node.transmitting {
            let total = self.medium.sensed_total(n, node.freq, self.now);
            let reading = self.sc.radio.rssi.read(total.to_dbm());
            let now = self.now;
            if let Some(p) = self.nodes[n].provider.as_mut() {
                p.on_power_sense(reading, now);
            }
        }
        let interval = match &self.nodes[n].provider {
            Some(Provider::Dcn(adj)) => adj.config().power_sense_interval,
            _ => SimDuration::from_millis(1),
        };
        let at = self.now + interval;
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::PowerSense(n));
        }
    }

    fn on_provider_tick(&mut self, n: NodeId) {
        let now = self.now;
        if let Some(p) = self.nodes[n].provider.as_mut() {
            p.on_tick(now);
        }
        let at = now + TICK_PERIOD;
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::ProviderTick(n));
        }
    }

    fn finalize(self) -> SimResult {
        let end = SimTime::ZERO + self.sc.duration;
        let mut mac_stats = Vec::new();
        let mut final_thresholds = Vec::new();
        let mut tx_powers = Vec::new();
        for node in &self.nodes {
            if node.is_sender {
                mac_stats.push(node.stats);
                tx_powers.push(node.tx_power);
                let t = node
                    .provider
                    .as_ref()
                    .map(|p| self.sc.radio.clamp_cca_threshold(p.threshold(end)))
                    .unwrap_or(self.sc.radio.default_cca_threshold);
                final_thresholds.push(t);
            }
        }
        SimResult {
            measured: self.sc.duration - self.sc.warmup,
            links: self.links,
            network_frequencies: self
                .sc
                .deployment
                .networks
                .iter()
                .map(|n| n.frequency)
                .collect(),
            mac_stats,
            tx_powers,
            final_thresholds,
            timeline: self.timeline,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{NetworkBehavior, Scenario};
    use nomc_topology::paper;
    use nomc_topology::spectrum::ChannelPlan;
    use nomc_units::Megahertz;

    fn single_network_scenario(seed: u64) -> Scenario {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        b.duration(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(1))
            .seed(seed);
        b.build().expect("builder-validated test scenario")
    }

    #[test]
    fn single_network_saturates_plausibly() {
        let result = run(&single_network_scenario(1));
        let tput = result.total_throughput();
        // Two saturated 2 m links on a clean channel: the paper's
        // networks sit in the 230-300 pkt/s range.
        assert!(
            (180.0..320.0).contains(&tput),
            "implausible saturated throughput {tput}"
        );
        // Intra-network CSMA collisions (turnaround window + forced
        // transmissions) cost some frames, but most must get through.
        let prr = result
            .total_prr()
            .expect("saturated links sent frames in the measured window");
        assert!(prr > 0.75, "PRR {prr}");
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let a = run(&single_network_scenario(7));
        let b = run(&single_network_scenario(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&single_network_scenario(7));
        let b = run(&single_network_scenario(8));
        assert_ne!(a, b);
    }

    /// A radio whose CCA-threshold register is not range-limited, so
    /// tests can pin the threshold below the noise floor.
    fn unclamped_radio() -> nomc_radio::RadioConfig {
        let mut r = nomc_radio::RadioConfig::cc2420();
        r.cca_threshold_range = (Dbm::new(-150.0), Dbm::new(0.0));
        r.rssi = nomc_radio::rssi::RssiRegister::ideal();
        r
    }

    #[test]
    fn blocked_channel_with_drop_policy_sends_nothing() {
        // Threshold below the noise floor reading + DropPacket ⇒ every CCA
        // busy ⇒ all frames dropped.
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        let mut behavior = NetworkBehavior::zigbee_default();
        behavior.threshold = ThresholdMode::Fixed(Dbm::new(-150.0));
        behavior.mac.on_failure = nomc_mac::CcaFailurePolicy::DropPacket;
        b.behavior_all(behavior)
            .radio(unclamped_radio())
            .duration(SimDuration::from_secs(3))
            .warmup(SimDuration::from_secs(1));
        let result = run(&b.build().expect("builder-validated test scenario"));
        assert_eq!(result.total_throughput(), 0.0);
        let failures: u64 = result.mac_stats.iter().map(|s| s.access_failures).sum();
        assert!(failures > 0, "drops should be recorded");
    }

    #[test]
    fn transmit_anyway_keeps_a_floor_rate() {
        // Same blocked channel, but the default transmit-anyway policy
        // forces frames out at the backoff-exhaustion rate (~40-60/s per
        // link) — the paper's Fig. 6 left plateau.
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        let mut behavior = NetworkBehavior::zigbee_default();
        behavior.threshold = ThresholdMode::Fixed(Dbm::new(-150.0));
        b.behavior_all(behavior)
            .radio(unclamped_radio())
            .duration(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(1));
        let result = run(&b.build().expect("builder-validated test scenario"));
        let sent_rate: f64 = result
            .links
            .iter()
            .map(|l| l.send_rate(result.measured))
            .sum();
        assert!(
            (40.0..160.0).contains(&sent_rate),
            "forced floor rate {sent_rate}"
        );
        let forced: u64 = result.links.iter().map(|l| l.forced_sent).sum();
        let sent: u64 = result.links.iter().map(|l| l.sent).sum();
        assert_eq!(forced, sent, "every frame was forced");
    }

    #[test]
    fn orthogonal_networks_do_not_interact() {
        // Two networks 9 MHz apart and 4.5 m apart: throughput should be
        // ≈ 2× a single network's.
        let single = run(&single_network_scenario(3)).total_throughput();
        let plan = ChannelPlan::with_count(Megahertz::new(2455.0), Megahertz::new(9.0), 2);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        b.duration(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(1))
            .seed(3);
        let double = run(&b.build().expect("builder-validated test scenario")).total_throughput();
        let ratio = double / single;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn attacker_interval_pacing() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(3.0), 1);
        let mut deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        deployment.networks[0].links.truncate(1);
        let mut b = Scenario::builder(deployment);
        b.behavior_all(NetworkBehavior::attacker(SimDuration::from_millis(5)))
            .duration(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(1));
        let result = run(&b.build().expect("builder-validated test scenario"));
        let rate = result.links[0].send_rate(result.measured);
        assert!((195.0..205.0).contains(&rate), "interval rate {rate}");
        // Carrier sense disabled: no CCA at all.
        assert_eq!(
            result.mac_stats[0].cca_busy + result.mac_stats[0].cca_clear,
            0
        );
    }

    #[test]
    fn dcn_network_initializes_and_relaxes() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        b.behavior_all(NetworkBehavior::dcn_default())
            .duration(SimDuration::from_secs(8))
            .warmup(SimDuration::from_secs(4));
        let result = run(&b.build().expect("builder-validated test scenario"));
        // On a clean channel DCN should settle near the co-channel peer
        // RSSI (2-2.8 m at 0 dBm ⇒ ≈ −50 ± shadowing), way above −77.
        for &t in &result.final_thresholds {
            assert!(t > Dbm::new(-70.0), "DCN threshold failed to relax: {t}");
        }
        // And throughput must not collapse relative to the fixed design.
        assert!(result.total_throughput() > 150.0);
    }

    #[test]
    fn acknowledged_clean_link_delivers_everything() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let mut deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        deployment.networks[0].links.truncate(1);
        let mut b = Scenario::builder(deployment);
        let mut behavior = NetworkBehavior::zigbee_default();
        behavior.mac = nomc_mac::CsmaParams::acknowledged_default();
        b.behavior_all(behavior)
            .duration(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(1));
        let result = run(&b.build().expect("builder-validated test scenario"));
        let link = &result.links[0];
        // Clean channel: essentially no retransmissions, no duplicates,
        // nothing abandoned, and throughput close to the unacked link's
        // minus the ACK overhead.
        assert!(link.received > 100, "received {}", link.received);
        assert_eq!(link.abandoned, 0);
        assert!(
            link.retransmissions < link.received / 20,
            "retransmissions {}",
            link.retransmissions
        );
        assert!(link.duplicates <= link.retransmissions);
    }

    #[test]
    fn acknowledged_link_retransmits_under_interference() {
        // A −12 dBm link against a 0 dBm adjacent-channel attacker: CRC
        // failures force retransmissions, and retransmissions recover
        // deliveries that the unacknowledged link loses.
        let build = |acked: bool, seed: u64| {
            let (mut deployment, n, a) = {
                let (d, n, a) = paper::fig4_deployment(
                    Megahertz::new(2460.0),
                    Megahertz::new(2.0),
                    Dbm::new(0.0),
                );
                (d, n, a)
            };
            deployment.networks[n].links[0].tx_power = Dbm::new(-12.0);
            let mut b = Scenario::builder(deployment);
            let mut normal = NetworkBehavior::zigbee_default();
            if acked {
                normal.mac = nomc_mac::CsmaParams::acknowledged_default();
            }
            b.behavior(n, normal)
                .behavior(a, NetworkBehavior::attacker(SimDuration::from_micros(2200)))
                .duration(SimDuration::from_secs(6))
                .warmup(SimDuration::from_secs(1))
                .seed(seed);
            run(&b.build().expect("builder-validated test scenario"))
        };
        let acked = build(true, 3);
        let plain = build(false, 3);
        let acked_link = &acked.links[0];
        let plain_link = &plain.links[0];
        assert!(
            acked_link.retransmissions > 0,
            "interference should force retries"
        );
        // Unique-delivery rate of the acked link should beat the plain
        // link's PRR (retries mask losses).
        let acked_ratio = acked_link.received as f64 / acked.mac_stats[0].enqueued.max(1) as f64;
        let plain_prr = plain_link.prr().unwrap_or(0.0);
        assert!(
            acked_ratio > plain_prr,
            "acked delivery ratio {acked_ratio} vs plain PRR {plain_prr}"
        );
    }

    #[test]
    fn forwarding_chain_relays_deliveries() {
        // Two-hop chain: link 0 (saturated source) delivers to a relay
        // position; link 1 forwards each delivery onward on another
        // channel.
        use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
        let hop0 = NetworkSpec::new(
            Megahertz::new(2458.0),
            vec![LinkSpec::new(
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Dbm::new(0.0),
            )],
        );
        let hop1 = NetworkSpec::new(
            Megahertz::new(2461.0), // 3 MHz away: non-orthogonal
            vec![LinkSpec::new(
                Point::new(2.0, 0.1), // colocated with hop0's receiver
                Point::new(4.0, 0.0),
                Dbm::new(0.0),
            )],
        );
        let mut b = Scenario::builder(Deployment::new(vec![hop0, hop1]));
        b.link_traffic(1, TrafficModel::Forward { from_link: 0 })
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .seed(9);
        let result = run(&b.build().expect("builder-validated test scenario"));
        let source_delivered = result.links[0].received;
        let forwarded_sent = result.links[1].sent;
        let sink_delivered = result.links[1].received;
        assert!(source_delivered > 100, "source {source_delivered}");
        // The relay forwards (almost) one frame per delivery — boundary
        // effects allow a small mismatch.
        assert!(
            (forwarded_sent as f64) > 0.8 * source_delivered as f64
                && (forwarded_sent as f64) < 1.1 * source_delivered as f64,
            "source {source_delivered} vs forwarded {forwarded_sent}"
        );
        assert!(sink_delivered > 0);
        // With hops only 3 MHz apart, the relay's own transmissions leak
        // into its colocated receiver (ACR 20 dB at ~1 m), costing hop 0
        // some deliveries relative to a lone link — the non-orthogonal
        // relaying trade-off.
        let lone = {
            let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(5.0), 1);
            let mut d = paper::line_deployment(&plan, Dbm::new(0.0));
            d.networks[0].links.truncate(1);
            let mut b = Scenario::builder(d);
            b.duration(SimDuration::from_secs(6))
                .warmup(SimDuration::from_secs(1))
                .seed(9);
            run(&b.build().expect("builder-validated test scenario")).links[0].received
        };
        assert!(
            source_delivered < lone,
            "relay contention should cost something: {source_delivered} vs {lone}"
        );
    }

    #[test]
    fn forwarder_without_credits_stays_silent() {
        use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
        // A forwarding link whose upstream never delivers (no source).
        let upstream = NetworkSpec::new(
            Megahertz::new(2458.0),
            vec![LinkSpec::new(
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Dbm::new(0.0),
            )],
        );
        let downstream = NetworkSpec::new(
            Megahertz::new(2467.0),
            vec![LinkSpec::new(
                Point::new(2.0, 0.0),
                Point::new(4.0, 0.0),
                Dbm::new(0.0),
            )],
        );
        let mut b = Scenario::builder(Deployment::new(vec![upstream, downstream]));
        // Upstream paced absurdly slowly: ~0 deliveries in the window.
        b.behavior(
            0,
            NetworkBehavior {
                traffic: TrafficModel::Interval(SimDuration::from_secs(30)),
                ..NetworkBehavior::zigbee_default()
            },
        )
        .link_traffic(1, TrafficModel::Forward { from_link: 0 })
        .duration(SimDuration::from_secs(4))
        .warmup(SimDuration::from_secs(1))
        .seed(10);
        let result = run(&b.build().expect("builder-validated test scenario"));
        assert_eq!(result.links[1].sent, 0, "no credits, no transmissions");
    }

    #[test]
    fn trace_recording() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(1))
            .record_trace(true);
        let result = run(&b.build().expect("builder-validated test scenario"));
        assert!(!result.trace.is_empty());
        let has =
            |pred: fn(&crate::trace::TraceKind) -> bool| result.trace.iter().any(|r| pred(&r.kind));
        assert!(has(|k| matches!(k, crate::trace::TraceKind::Cca { .. })));
        assert!(has(|k| matches!(
            k,
            crate::trace::TraceKind::TxStart { .. }
        )));
        assert!(has(|k| matches!(
            k,
            crate::trace::TraceKind::Outcome { .. }
        )));
        // Chronological order.
        assert!(result.trace.windows(2).all(|w| w[0].at <= w[1].at));
        // And disabled by default.
        let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(1));
        assert!(run(&b.build().expect("builder-validated test scenario"))
            .trace
            .is_empty());
    }

    #[test]
    fn timeline_recording() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
        let mut b = Scenario::builder(deployment);
        b.duration(SimDuration::from_secs(3))
            .warmup(SimDuration::from_secs(1))
            .record_timeline(true);
        let result = run(&b.build().expect("builder-validated test scenario"));
        assert!(!result.timeline.is_empty());
        for r in &result.timeline {
            assert!(r.end > r.start);
            assert!(r.link < 2);
        }
    }
}
