//! The simulation entry points.
//!
//! [`run`] executes a [`Scenario`] to completion and returns a
//! [`SimResult`]; [`run_with`] does the same while streaming typed
//! notifications to caller-supplied
//! [`crate::runtime::observer::SimObserver`] sinks.
//!
//! The machinery behind these lives in [`crate::runtime`]: the event
//! loop ([`runtime`](crate::runtime) dispatch), per-node state and MAC
//! handling, the data-frame and ACK life cycles, power sensing, and the
//! observer fan-out. The serial engine is single-threaded and fully
//! deterministic for a given scenario + seed, and observers are
//! write-only: attaching any combination of them cannot change the
//! simulated outcome.
//!
//! [`run_sharded`] (and friends) execute one run as deterministic
//! shards: the scenario is partitioned into interaction components
//! (see [`crate::runtime::shard`]), each component simulates on its
//! own engine with a derived RNG stream, and worker threads advance
//! the shards in conservative time windows while a canonical merge
//! rebuilds one serial-looking observer stream. Results depend only on
//! the scenario — never on the thread count.
//!
//! # Examples
//!
//! Count every frame that went on air with a custom observer:
//!
//! ```
//! use nomc_sim::runtime::observer::{SimObserver, TxStartInfo};
//! use nomc_sim::{engine, Scenario};
//! use nomc_topology::{paper, spectrum::ChannelPlan};
//! use nomc_units::{Dbm, Megahertz, SimDuration};
//!
//! #[derive(Default)]
//! struct FrameCounter(u64);
//! impl SimObserver for FrameCounter {
//!     fn on_tx_start(&mut self, _info: &TxStartInfo) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
//! let mut builder = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
//! builder.duration(SimDuration::from_secs(1)).warmup(SimDuration::from_millis(250));
//! let scenario = builder.build()?;
//! let mut counter = FrameCounter::default();
//! let result = engine::run_with(&scenario, &mut [&mut counter]);
//! assert!(counter.0 >= result.links.iter().map(|l| l.sent).sum::<u64>());
//! # Ok::<(), String>(())
//! ```

use crate::metrics::SimResult;
use crate::runtime::observer::SimObserver;
use crate::runtime::snapshot::{self, ShardedProgress, ShardedSnapshot, SnapInner};
use crate::runtime::{shard, Engine};
use crate::scenario::Scenario;

pub use crate::runtime::snapshot::SnapshotError;

/// Runs `scenario` to completion.
///
/// # Panics
///
/// Panics if the scenario is internally inconsistent in a way
/// [`Scenario`]'s builder should have rejected (a bug, not an input
/// condition).
pub fn run(scenario: &Scenario) -> SimResult {
    run_with(scenario, &mut [])
}

/// Runs `scenario` to completion, fanning typed notifications out to
/// `observers` as the simulation progresses.
///
/// Observers are write-only sinks: the returned [`SimResult`] is
/// bit-identical to what [`run`] produces for the same scenario. The
/// built-in sinks in [`crate::runtime::sinks`] (JSONL streaming tracer,
/// energy meter, …) plug in here, as can any caller-defined
/// [`SimObserver`].
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_with(scenario: &Scenario, observers: &mut [&mut dyn SimObserver]) -> SimResult {
    Engine::new(scenario, observers).run()
}

/// A [`run_bounded`] outcome: the result plus whether the event budget
/// cut the run short.
#[derive(Debug)]
pub struct BoundedRun {
    /// The (possibly truncated) simulation result.
    pub result: SimResult,
    /// `true` when the run stopped on the event budget instead of
    /// draining naturally — the result covers only the simulated prefix.
    pub exhausted: bool,
}

/// Runs `scenario` with a deterministic event budget: after handling
/// `max_events` events the run stops and reports exhaustion.
///
/// This is the runaway protection for batch runners. It is purely a
/// function of the event count — no wall clock is consulted — so a
/// budget-truncated run is exactly as reproducible as a complete one,
/// and a budget larger than the run's natural event count changes
/// nothing at all.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_bounded(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
) -> BoundedRun {
    let mut engine = Engine::new(scenario, observers);
    engine.max_events = max_events;
    let (result, exhausted) = engine.run_reporting_exhaustion();
    BoundedRun { result, exhausted }
}

/// The canonical shard plan for `scenario`: one
/// [`shard::ShardSpec`] per interaction component, sorted by minimum
/// network index. Exposed for tests and tooling that want to inspect
/// how a scenario partitions; [`run_sharded`] computes the same plan
/// internally.
pub fn shard_plan(scenario: &Scenario) -> Vec<shard::ShardSpec> {
    shard::plan(scenario)
}

/// Runs `scenario` as deterministic shards on up to `threads` worker
/// threads.
///
/// The scenario is split into its interaction components (see
/// [`crate::runtime::shard`]); fully-coupled scenarios have one
/// component and delegate to [`run`] unchanged, so the result is
/// byte-identical to the serial engine. Multi-component scenarios run
/// each component as a standalone sub-scenario with a seed derived
/// from the base seed and the component's minimum network index — the
/// result is identical to running each component's sub-scenario
/// serially and composing, whatever `threads` is (`threads` only sizes
/// the worker pool and is clamped to `1..=components`).
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded(scenario: &Scenario, threads: usize) -> SimResult {
    run_sharded_with(scenario, &mut [], threads)
}

/// [`run_sharded`] with external observers: the canonical
/// `(time, shard, seq)` merge replays one serial-order notification
/// stream into `observers`, so sinks observe a sharded run exactly as
/// they would a serial one (transmission ids are minted in merged
/// order).
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded_with(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    threads: usize,
) -> SimResult {
    let plan = shard::plan(scenario);
    if plan.len() <= 1 {
        return run_with(scenario, observers);
    }
    let (result, _) = shard::execute(scenario, &plan, observers, u64::MAX, threads);
    result
}

/// [`run_bounded`] under sharding: the event budget is split across
/// shards as evenly as possible (earlier components take the
/// remainder), so a budget-truncated sharded run stops at the same
/// per-shard events — and reports the same totals — regardless of
/// thread count. `exhausted` is set when *any* shard hit its share.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded_bounded(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
    threads: usize,
) -> BoundedRun {
    let plan = shard::plan(scenario);
    if plan.len() <= 1 {
        return run_bounded(scenario, observers, max_events);
    }
    let (result, exhausted) = shard::execute(scenario, &plan, observers, max_events, threads);
    BoundedRun { result, exhausted }
}

/// A paused run, opaque to callers: serialize it with [`snapshot()`],
/// bring it back with [`restore`], continue it with [`resume_bounded`].
///
/// Holds everything mutable about the run (event queue with original
/// sequence numbers, RNG stream position, per-node MAC/provider state,
/// medium history, built-in collector state, event budget and count);
/// everything derived is recomputed from the scenario at resume. The
/// contract: *run-to-event-K, snapshot, restore, run-to-end is
/// byte-identical to the uninterrupted run* — results, traces,
/// timelines, and (for sharded runs) the merged observer stream.
#[derive(Debug)]
pub struct RunSnapshot {
    inner: SnapInner,
}

impl RunSnapshot {
    /// Replaces the event budget persisted in the snapshot.
    ///
    /// A supervisor that retries a timed-out run with a doubled budget
    /// resumes from the latest checkpoint rather than starting over;
    /// this lets it graft the new budget onto the saved state. Sharded
    /// snapshots re-split the budget over their ranks exactly as a
    /// fresh bounded run would.
    pub fn set_budget(&mut self, max_events: u64) {
        match &mut self.inner {
            SnapInner::Serial(snap) => snap.max_events = max_events,
            SnapInner::Sharded(snap) => snap.set_budget(max_events),
        }
    }
}

/// A [`run_until`] / [`resume_bounded`] outcome: either the run paused
/// at the requested event count, or it finished.
#[derive(Debug)]
pub enum RunProgress {
    /// The pause target was reached first; the run can be snapshotted
    /// and resumed.
    Paused(Box<RunSnapshot>),
    /// The run completed (naturally or on its event budget) before the
    /// pause target.
    Done(BoundedRun),
}

/// Runs `scenario` on the serial engine until `pause_after` events have
/// been handled, the event budget `max_events` is exhausted, or the run
/// drains — whichever comes first.
///
/// Both limits count *handled events* — no wall clock is consulted — so
/// the pause point is deterministic. Pausing takes effect before the
/// `pause_after + 1`-th event is popped: the paused engine has done
/// exactly what the uninterrupted engine had done after its
/// `pause_after`-th event, which is what makes the resumed run
/// byte-identical. Pass `u64::MAX` for either limit to disable it.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_until(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
    pause_after: u64,
) -> RunProgress {
    let mut engine = Engine::new(scenario, observers);
    engine.max_events = max_events;
    engine.bootstrap();
    serial_leg(engine, pause_after)
}

/// [`run_until`] under sharding: pauses once the *global* event count
/// (summed across shards) reaches `pause_after`.
///
/// Single-component plans delegate to the serial [`run_until`], exactly
/// as [`run_sharded`] delegates to [`run`]. Multi-component plans run
/// rank by rank with the same per-shard budget split as
/// [`run_sharded_bounded`]; on completion the buffered note stream
/// replays through the canonical `(time, shard, seq)` merge, so the
/// merged result and observer stream are byte-identical to an
/// uninterrupted [`run_sharded_bounded`] whatever the pause pattern
/// was.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded_until(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
    pause_after: u64,
) -> RunProgress {
    let plan = shard::plan(scenario);
    if plan.len() <= 1 {
        return run_until(scenario, observers, max_events, pause_after);
    }
    let fresh = ShardedSnapshot::fresh(scenario, max_events, plan.len());
    let progress = snapshot::run_sharded_leg(scenario, fresh, observers, pause_after)
        // A freshly minted snapshot always matches its own scenario and
        // plan; a rejection here is an engine bug, not an input condition.
        .expect("fresh sharded leg accepts its own snapshot");
    sharded_progress(progress)
}

/// Serializes a paused run as self-describing, versioned snapshot JSON
/// (the in-tree `nomc-json` codec; exact `u64`/`f64` round-trips).
///
/// The scenario itself is *not* embedded — only its fingerprint — so a
/// snapshot can only be resumed against the configuration that produced
/// it, and snapshot files stay proportional to live state.
pub fn snapshot(snap: &RunSnapshot) -> String {
    snapshot::encode(&snap.inner)
}

/// Parses snapshot JSON produced by [`snapshot()`] back into a resumable
/// [`RunSnapshot`].
///
/// Total: corrupt payloads (truncation, bit flips, type confusion) are
/// [`SnapshotError::Malformed`], an incompatible format version is
/// [`SnapshotError::VersionSkew`] — never a panic. Scenario agreement
/// is checked at [`resume_bounded`] time, where the scenario is in
/// hand.
pub fn restore(text: &str) -> Result<RunSnapshot, SnapshotError> {
    snapshot::decode(text).map(|inner| RunSnapshot { inner })
}

/// Resumes a paused run against `scenario` until `pause_after` total
/// events, its persisted event budget, or completion — whichever comes
/// first.
///
/// The snapshot remembers whether it was a serial or sharded run and
/// its original `max_events`; `pause_after` is an absolute target on
/// the same counter [`run_until`] uses (pass `u64::MAX` to run to the
/// end). `observers` attach for the remainder of the run: a resumed
/// serial run streams them the suffix only, while a resumed sharded
/// run replays the *complete* buffered note stream at the final merge.
/// Built-in collector state travels inside the snapshot either way, so
/// the returned result, trace, and timeline are byte-identical to an
/// uninterrupted run.
///
/// # Errors
///
/// [`SnapshotError::ScenarioMismatch`] when the snapshot fingerprint
/// does not match `scenario`, [`SnapshotError::Malformed`] when the
/// snapshot's internal invariants do not hold against the scenario
/// (index bounds, state-shape agreement). Never panics on bad input.
pub fn resume_bounded(
    scenario: &Scenario,
    snap: RunSnapshot,
    observers: &mut [&mut dyn SimObserver],
    pause_after: u64,
) -> Result<RunProgress, SnapshotError> {
    match snap.inner {
        SnapInner::Serial(engine_snap) => {
            let engine = Engine::restore_from(scenario, observers, &engine_snap)?;
            Ok(serial_leg(engine, pause_after))
        }
        SnapInner::Sharded(sharded) => {
            let progress = snapshot::run_sharded_leg(scenario, sharded, observers, pause_after)?;
            Ok(sharded_progress(progress))
        }
    }
}

/// Advances a (fresh or restored) serial engine one leg.
fn serial_leg(mut engine: Engine<'_, '_, '_>, pause_after: u64) -> RunProgress {
    match engine.run_leg(pause_after) {
        crate::runtime::LegEnd::Paused => RunProgress::Paused(Box::new(RunSnapshot {
            inner: SnapInner::Serial(Box::new(engine.capture())),
        })),
        crate::runtime::LegEnd::Over => {
            let exhausted = engine.exhausted;
            RunProgress::Done(BoundedRun {
                result: engine.finalize(),
                exhausted,
            })
        }
    }
}

fn sharded_progress(progress: ShardedProgress) -> RunProgress {
    match progress {
        ShardedProgress::Paused(sharded) => RunProgress::Paused(Box::new(RunSnapshot {
            inner: SnapInner::Sharded(sharded),
        })),
        ShardedProgress::Done(result, exhausted) => {
            RunProgress::Done(BoundedRun { result, exhausted })
        }
    }
}
