//! The simulation entry points.
//!
//! [`run`] executes a [`Scenario`] to completion and returns a
//! [`SimResult`]; [`run_with`] does the same while streaming typed
//! notifications to caller-supplied
//! [`crate::runtime::observer::SimObserver`] sinks.
//!
//! The machinery behind these lives in [`crate::runtime`]: the event
//! loop ([`runtime`](crate::runtime) dispatch), per-node state and MAC
//! handling, the data-frame and ACK life cycles, power sensing, and the
//! observer fan-out. The serial engine is single-threaded and fully
//! deterministic for a given scenario + seed, and observers are
//! write-only: attaching any combination of them cannot change the
//! simulated outcome.
//!
//! [`run_sharded`] (and friends) execute one run as deterministic
//! shards: the scenario is partitioned into interaction components
//! (see [`crate::runtime::shard`]), each component simulates on its
//! own engine with a derived RNG stream, and worker threads advance
//! the shards in conservative time windows while a canonical merge
//! rebuilds one serial-looking observer stream. Results depend only on
//! the scenario — never on the thread count.
//!
//! # Examples
//!
//! Count every frame that went on air with a custom observer:
//!
//! ```
//! use nomc_sim::runtime::observer::{SimObserver, TxStartInfo};
//! use nomc_sim::{engine, Scenario};
//! use nomc_topology::{paper, spectrum::ChannelPlan};
//! use nomc_units::{Dbm, Megahertz, SimDuration};
//!
//! #[derive(Default)]
//! struct FrameCounter(u64);
//! impl SimObserver for FrameCounter {
//!     fn on_tx_start(&mut self, _info: &TxStartInfo) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
//! let mut builder = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
//! builder.duration(SimDuration::from_secs(1)).warmup(SimDuration::from_millis(250));
//! let scenario = builder.build()?;
//! let mut counter = FrameCounter::default();
//! let result = engine::run_with(&scenario, &mut [&mut counter]);
//! assert!(counter.0 >= result.links.iter().map(|l| l.sent).sum::<u64>());
//! # Ok::<(), String>(())
//! ```

use crate::metrics::SimResult;
use crate::runtime::observer::SimObserver;
use crate::runtime::{shard, Engine};
use crate::scenario::Scenario;

/// Runs `scenario` to completion.
///
/// # Panics
///
/// Panics if the scenario is internally inconsistent in a way
/// [`Scenario`]'s builder should have rejected (a bug, not an input
/// condition).
pub fn run(scenario: &Scenario) -> SimResult {
    run_with(scenario, &mut [])
}

/// Runs `scenario` to completion, fanning typed notifications out to
/// `observers` as the simulation progresses.
///
/// Observers are write-only sinks: the returned [`SimResult`] is
/// bit-identical to what [`run`] produces for the same scenario. The
/// built-in sinks in [`crate::runtime::sinks`] (JSONL streaming tracer,
/// energy meter, …) plug in here, as can any caller-defined
/// [`SimObserver`].
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_with(scenario: &Scenario, observers: &mut [&mut dyn SimObserver]) -> SimResult {
    Engine::new(scenario, observers).run()
}

/// A [`run_bounded`] outcome: the result plus whether the event budget
/// cut the run short.
#[derive(Debug)]
pub struct BoundedRun {
    /// The (possibly truncated) simulation result.
    pub result: SimResult,
    /// `true` when the run stopped on the event budget instead of
    /// draining naturally — the result covers only the simulated prefix.
    pub exhausted: bool,
}

/// Runs `scenario` with a deterministic event budget: after handling
/// `max_events` events the run stops and reports exhaustion.
///
/// This is the runaway protection for batch runners. It is purely a
/// function of the event count — no wall clock is consulted — so a
/// budget-truncated run is exactly as reproducible as a complete one,
/// and a budget larger than the run's natural event count changes
/// nothing at all.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_bounded(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
) -> BoundedRun {
    let mut engine = Engine::new(scenario, observers);
    engine.max_events = max_events;
    let (result, exhausted) = engine.run_reporting_exhaustion();
    BoundedRun { result, exhausted }
}

/// The canonical shard plan for `scenario`: one
/// [`shard::ShardSpec`] per interaction component, sorted by minimum
/// network index. Exposed for tests and tooling that want to inspect
/// how a scenario partitions; [`run_sharded`] computes the same plan
/// internally.
pub fn shard_plan(scenario: &Scenario) -> Vec<shard::ShardSpec> {
    shard::plan(scenario)
}

/// Runs `scenario` as deterministic shards on up to `threads` worker
/// threads.
///
/// The scenario is split into its interaction components (see
/// [`crate::runtime::shard`]); fully-coupled scenarios have one
/// component and delegate to [`run`] unchanged, so the result is
/// byte-identical to the serial engine. Multi-component scenarios run
/// each component as a standalone sub-scenario with a seed derived
/// from the base seed and the component's minimum network index — the
/// result is identical to running each component's sub-scenario
/// serially and composing, whatever `threads` is (`threads` only sizes
/// the worker pool and is clamped to `1..=components`).
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded(scenario: &Scenario, threads: usize) -> SimResult {
    run_sharded_with(scenario, &mut [], threads)
}

/// [`run_sharded`] with external observers: the canonical
/// `(time, shard, seq)` merge replays one serial-order notification
/// stream into `observers`, so sinks observe a sharded run exactly as
/// they would a serial one (transmission ids are minted in merged
/// order).
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded_with(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    threads: usize,
) -> SimResult {
    let plan = shard::plan(scenario);
    if plan.len() <= 1 {
        return run_with(scenario, observers);
    }
    let (result, _) = shard::execute(scenario, &plan, observers, u64::MAX, threads);
    result
}

/// [`run_bounded`] under sharding: the event budget is split across
/// shards as evenly as possible (earlier components take the
/// remainder), so a budget-truncated sharded run stops at the same
/// per-shard events — and reports the same totals — regardless of
/// thread count. `exhausted` is set when *any* shard hit its share.
///
/// # Panics
///
/// Panics under the same (builder-rejected) conditions as [`run`].
pub fn run_sharded_bounded(
    scenario: &Scenario,
    observers: &mut [&mut dyn SimObserver],
    max_events: u64,
    threads: usize,
) -> BoundedRun {
    let plan = shard::plan(scenario);
    if plan.len() <= 1 {
        return run_bounded(scenario, observers, max_events);
    }
    let (result, exhausted) = shard::execute(scenario, &plan, observers, max_events, threads);
    BoundedRun { result, exhausted }
}
