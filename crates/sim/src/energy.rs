//! Radio energy accounting.
//!
//! MicaZ-class motes spend most of their budget on the radio. The model
//! here follows the CC2420 datasheet currents (via
//! [`nomc_radio::power::current`]): a transmitter is in TX for its
//! frames' airtime and in RX/listen otherwise (these motes do not duty
//! cycle — CSMA requires a hot receiver). Energy per *delivered* packet
//! is the figure of merit: a scheme that transmits more but delivers
//! proportionally more keeps it flat, while wasted (collided) frames
//! raise it.

use nomc_mac::MacStats;
use nomc_radio::power::current;
use nomc_units::{Dbm, SimDuration};

/// Supply voltage of a MicaZ's radio rail.
pub const SUPPLY_VOLTS: f64 = 3.0;

/// One transmitter's radio-energy estimate over the measured window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Time spent transmitting.
    pub tx_time: SimDuration,
    /// Time spent listening (everything else; CSMA receivers are hot).
    pub rx_time: SimDuration,
    /// Total radio energy in millijoules.
    pub total_mj: f64,
}

impl EnergyEstimate {
    /// Energy per delivered packet in millijoules, or `None` if nothing
    /// was delivered.
    pub fn per_delivered_packet(&self, delivered: u64) -> Option<f64> {
        if delivered == 0 {
            None
        } else {
            Some(self.total_mj / delivered as f64)
        }
    }
}

/// Estimates a transmitter's radio energy over `measured`, given its MAC
/// counters, the per-frame airtime and its TX power.
///
/// # Examples
///
/// ```
/// use nomc_sim::energy::transmitter_energy;
/// use nomc_mac::MacStats;
/// use nomc_units::{Dbm, SimDuration};
///
/// let stats = MacStats { transmitted: 100, ..MacStats::default() };
/// let e = transmitter_energy(
///     &stats,
///     SimDuration::from_micros(1824),
///     Dbm::new(0.0),
///     SimDuration::from_secs(1),
/// );
/// assert!(e.tx_time < e.rx_time);
/// assert!(e.total_mj > 0.0);
/// ```
pub fn transmitter_energy(
    stats: &MacStats,
    airtime: SimDuration,
    tx_power: Dbm,
    measured: SimDuration,
) -> EnergyEstimate {
    let tx_time = (airtime * stats.transmitted).min(measured);
    let rx_time = measured - tx_time;
    let tx_mj = current::tx_ma(tx_power) * SUPPLY_VOLTS * tx_time.as_secs_f64();
    let rx_mj = current::RX_MA * SUPPLY_VOLTS * rx_time.as_secs_f64();
    EnergyEstimate {
        tx_time,
        rx_time,
        total_mj: tx_mj + rx_mj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(transmitted: u64) -> MacStats {
        MacStats {
            transmitted,
            ..MacStats::default()
        }
    }

    #[test]
    fn idle_transmitter_is_all_rx() {
        let e = transmitter_energy(
            &stats(0),
            SimDuration::from_micros(1824),
            Dbm::new(0.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(e.tx_time, SimDuration::ZERO);
        assert_eq!(e.rx_time, SimDuration::from_secs(10));
        // 18.8 mA × 3 V × 10 s = 564 mJ.
        assert!((e.total_mj - 564.0).abs() < 1e-6);
    }

    #[test]
    fn more_transmissions_cost_less_energy_at_cc2420_currents() {
        // On a CC2420, TX at 0 dBm (17.4 mA) draws *less* than RX
        // (18.8 mA), so a busier transmitter actually uses slightly less
        // radio energy — the real cost of wasted frames is lost goodput.
        let quiet = transmitter_energy(
            &stats(10),
            SimDuration::from_micros(1824),
            Dbm::new(0.0),
            SimDuration::from_secs(10),
        );
        let busy = transmitter_energy(
            &stats(1000),
            SimDuration::from_micros(1824),
            Dbm::new(0.0),
            SimDuration::from_secs(10),
        );
        assert!(busy.total_mj < quiet.total_mj);
        assert!(busy.tx_time > quiet.tx_time);
    }

    #[test]
    fn per_delivered_packet() {
        let e = transmitter_energy(
            &stats(100),
            SimDuration::from_micros(1824),
            Dbm::new(0.0),
            SimDuration::from_secs(1),
        );
        assert_eq!(e.per_delivered_packet(0), None);
        let per = e.per_delivered_packet(80).unwrap();
        assert!((per - e.total_mj / 80.0).abs() < 1e-12);
    }

    #[test]
    fn tx_time_clamped_to_window() {
        let e = transmitter_energy(
            &stats(10_000),
            SimDuration::from_micros(1824),
            Dbm::new(0.0),
            SimDuration::from_secs(1),
        );
        assert_eq!(e.tx_time, SimDuration::from_secs(1));
        assert_eq!(e.rx_time, SimDuration::ZERO);
    }
}
