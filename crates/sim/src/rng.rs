//! Deterministic, platform-independent random numbers.
//!
//! The xoshiro256** generator now lives in [`nomc_rngcore`] (it is the
//! workspace's only generator); this module re-exports it under its
//! historical path so simulator callers and scenario tooling keep
//! working unchanged.
//!
//! # Examples
//!
//! ```
//! use nomc_sim::rng::Xoshiro256StarStar;
//! use nomc_rngcore::{Rng, SeedableRng};
//!
//! let mut a = Xoshiro256StarStar::seed_from_u64(7);
//! let mut b = Xoshiro256StarStar::seed_from_u64(7);
//! let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
//! let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
//! assert_eq!(xs, ys);
//! ```

pub use nomc_rngcore::{splitmix64, Xoshiro256StarStar};
