//! The event queue.
//!
//! Events are keyed by `(time, sequence)`; the monotone sequence number
//! makes same-instant ordering deterministic (insertion order), which is
//! essential for reproducible runs. The [`EventQueue`] trait abstracts the
//! priority-queue implementation so the engine can swap data structures
//! without touching dispatch semantics:
//!
//! * [`HeapQueue`] — the reference `BinaryHeap` implementation. `O(log n)`
//!   per operation, trivially correct.
//! * [`BucketQueue`] — a calendar queue keyed on 802.15.4 symbol time.
//!   Simulation events cluster within a few milliseconds of *now* (slot
//!   boundaries, CCA windows, frame airtimes), so hashing each event into a
//!   16 µs-wide bucket on a circular wheel gives `O(1)` amortized
//!   schedule/pop. Far-future events (provider ticks, fault injections)
//!   overflow into a small heap and migrate onto the wheel as time
//!   advances.
//!
//! Both implementations produce the exact same pop order — [`BucketQueue`]
//! resolves each bucket by minimum `(time, sequence)`, so FIFO-within-
//! timestamp holds and golden traces are byte-identical whichever queue
//! the engine uses. Property tests pin this equivalence in
//! `tests/tests/event_queue.rs`.

use nomc_units::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a node in the running simulation.
pub type NodeId = usize;

/// Identifies one transmission.
pub type TxId = u64;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The node's traffic source delivers the next frame to the MAC.
    PacketReady(NodeId),
    /// The node's CSMA backoff timer expired.
    BackoffExpired(NodeId),
    /// The node's CCA measurement window closed.
    CcaDone(NodeId),
    /// The node's radio finished RX→TX turnaround and begins emitting.
    TxStart(NodeId),
    /// Transmission `1` from node `0` left the air.
    TxEnd(NodeId, TxId),
    /// The receiver finished correlating the preamble/SFD of `1`.
    SyncDone(NodeId, TxId),
    /// DCN initializing-phase in-channel power sample.
    PowerSense(NodeId),
    /// Coarse periodic hook for time-based threshold rules (DCN Case II).
    ProviderTick(NodeId),
    /// Acknowledged mode: node `0` starts emitting the ACK for data
    /// transmission `1` (after RX→TX turnaround).
    AckStart(NodeId, TxId),
    /// Acknowledged mode: the sender's `macAckWaitDuration` for data
    /// transmission `1` expired.
    AckTimeout(NodeId, TxId),
    /// Fault injection: the node crashes (power loss). While down it
    /// neither transmits, senses, nor receives.
    NodeDown(NodeId),
    /// Fault injection: the node reboots with factory-fresh MAC and
    /// threshold state.
    NodeUp(NodeId),
    /// Fault injection: the node's CCA comparator latches *busy*.
    CcaStuckStart(NodeId),
    /// Fault injection: the latched CCA comparator releases.
    CcaStuckEnd(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// Implementations must pop in strict `(time, sequence)` order, where the
/// sequence number is a monotone counter minted at [`EventQueue::schedule`]
/// time. That makes same-instant ordering insertion order — the property
/// the golden trace fixtures depend on.
pub trait EventQueue {
    /// Schedules `event` at absolute time `at`.
    fn schedule(&mut self, at: SimTime, event: Event);

    /// Pops the earliest event with its schedule sequence number.
    ///
    /// The sequence number is minted at [`EventQueue::schedule`] time,
    /// so it totally orders *when events were scheduled* — the engine's
    /// fault layer uses it to discard events a crashed node scheduled
    /// in its previous life (see `runtime/faults.rs`).
    fn pop_entry(&mut self) -> Option<(SimTime, u64, Event)>;

    /// Pops the earliest event, if any.
    fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// The sequence number the *next* scheduled event will receive.
    /// Every event currently in the queue has a smaller one.
    fn next_seq(&self) -> u64;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference [`EventQueue`]: a binary heap keyed by `(time, seq)`.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl HeapQueue {
    /// An empty queue.
    pub fn new() -> Self {
        HeapQueue::default()
    }
}

impl EventQueue for HeapQueue {
    fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    fn pop_entry(&mut self) -> Option<(SimTime, u64, Event)> {
        self.heap.pop().map(|s| (s.time, s.seq, s.event))
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Calendar-queue bucket width: one 802.15.4 symbol period (16 µs). Every
/// MAC/PHY interval in the simulator is a multiple of the symbol time, so
/// same-bucket events are almost always same-instant and the min-scan per
/// bucket degenerates to FIFO.
const BUCKET_WIDTH_NS: u64 = 16_000;

/// Number of wheel slots. The wheel spans
/// `BUCKET_WIDTH_NS * WHEEL_SLOTS` ≈ 32.8 ms — comfortably more than the
/// longest near-term interval the runtime schedules (frame airtime ≈ 4.3 ms,
/// medium retention 20 ms). Only coarse provider ticks (250 ms) and fault
/// injections land in the overflow heap.
const WHEEL_SLOTS: usize = 2048;

/// A calendar (bucket) [`EventQueue`] keyed on symbol time.
///
/// Near-term events hash into a circular wheel of 2048 buckets
/// (`WHEEL_SLOTS`), each one 16 µs symbol period wide
/// (`BUCKET_WIDTH_NS`); scheduling is a push onto a short `Vec`
/// and popping scans forward from the current bucket. Events beyond one
/// wheel revolution sit in an overflow heap and migrate onto the wheel as
/// the cursor advances. Pop order is strict `(time, seq)` — within a
/// bucket the minimum entry is selected by scan — so the ordering contract
/// matches [`HeapQueue`] exactly.
#[derive(Debug)]
pub struct BucketQueue {
    /// Circular bucket array; entries within a slot are unordered.
    wheel: Vec<Vec<Scheduled>>,
    /// Events at or beyond `base + WHEEL_SPAN`, keyed like [`HeapQueue`].
    overflow: BinaryHeap<Scheduled>,
    /// Start time of the cursor bucket (multiple of [`BUCKET_WIDTH_NS`]).
    base_ns: u64,
    /// Entries currently on the wheel (excludes `overflow`).
    wheel_len: usize,
    next_seq: u64,
}

const WHEEL_SPAN_NS: u64 = BUCKET_WIDTH_NS * WHEEL_SLOTS as u64;

impl Default for BucketQueue {
    fn default() -> Self {
        BucketQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            base_ns: 0,
            wheel_len: 0,
            next_seq: 0,
        }
    }
}

impl BucketQueue {
    /// An empty queue.
    pub fn new() -> Self {
        BucketQueue::default()
    }

    fn slot_of(ns: u64) -> usize {
        ((ns / BUCKET_WIDTH_NS) % WHEEL_SLOTS as u64) as usize
    }

    /// Moves overflow entries that now fit within one wheel revolution of
    /// `base_ns` onto the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(s) = self.overflow.peek() {
            let ns = s.time.as_nanos();
            if ns >= self.base_ns.saturating_add(WHEEL_SPAN_NS) {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            self.wheel[Self::slot_of(ns)].push(s);
            self.wheel_len += 1;
        }
    }

    /// All pending entries in `(time, seq)` pop order, without disturbing
    /// the queue — together with [`EventQueue::next_seq`] this is the
    /// queue's complete logical state, which is all checkpointing needs:
    /// pop order depends only on `(time, seq)`, never on wheel placement.
    pub fn entries(&self) -> Vec<(SimTime, u64, Event)> {
        let mut out: Vec<(SimTime, u64, Event)> = Vec::with_capacity(self.len());
        for bucket in &self.wheel {
            out.extend(bucket.iter().map(|s| (s.time, s.seq, s.event)));
        }
        out.extend(self.overflow.iter().map(|s| (s.time, s.seq, s.event)));
        out.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Rebuilds a queue holding exactly `entries`, each keeping its
    /// originally minted sequence number, with `next_seq` as the next
    /// number to mint. The cursor starts at the earliest entry, so no
    /// entry is ever behind it.
    pub fn restore(entries: &[(SimTime, u64, Event)], next_seq: u64) -> Self {
        let mut q = BucketQueue::new();
        q.next_seq = next_seq;
        if let Some(min_ns) = entries.iter().map(|&(t, _, _)| t.as_nanos()).min() {
            q.base_ns = min_ns - min_ns % BUCKET_WIDTH_NS;
        }
        for &(time, seq, event) in entries {
            debug_assert!(seq < next_seq, "queued seq {seq} >= next_seq {next_seq}");
            let s = Scheduled { time, seq, event };
            let ns = time.as_nanos();
            if ns >= q.base_ns.saturating_add(WHEEL_SPAN_NS) {
                q.overflow.push(s);
            } else {
                q.wheel[Self::slot_of(ns)].push(s);
                q.wheel_len += 1;
            }
        }
        q
    }

    /// Removes and returns the minimum `(time, seq)` entry of `slot`.
    fn take_min(&mut self, slot: usize) -> Scheduled {
        let bucket = &self.wheel[slot];
        debug_assert!(!bucket.is_empty());
        let mut best = 0;
        for i in 1..bucket.len() {
            if (bucket[i].time, bucket[i].seq) < (bucket[best].time, bucket[best].seq) {
                best = i;
            }
        }
        self.wheel_len -= 1;
        self.wheel[slot].swap_remove(best)
    }
}

impl EventQueue for BucketQueue {
    fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled {
            time: at,
            seq,
            event,
        };
        let ns = at.as_nanos();
        if ns >= self.base_ns.saturating_add(WHEEL_SPAN_NS) {
            self.overflow.push(s);
        } else {
            // Late events (behind the cursor) land in the cursor bucket;
            // the min-scan still orders them first.
            let slot = if ns < self.base_ns {
                debug_assert!(false, "scheduled into the past: {ns} < {}", self.base_ns);
                Self::slot_of(self.base_ns)
            } else {
                Self::slot_of(ns)
            };
            self.wheel[slot].push(s);
            self.wheel_len += 1;
        }
    }

    fn pop_entry(&mut self) -> Option<(SimTime, u64, Event)> {
        loop {
            if self.wheel_len == 0 {
                // Jump the cursor straight to the earliest overflow event.
                let ns = self.overflow.peek()?.time.as_nanos();
                self.base_ns = ns - ns % BUCKET_WIDTH_NS;
                self.migrate_overflow();
                continue;
            }
            let slot = Self::slot_of(self.base_ns);
            if self.wheel[slot].is_empty() {
                self.base_ns += BUCKET_WIDTH_NS;
                self.migrate_overflow();
                continue;
            }
            let s = self.take_min(slot);
            return Some((s.time, s.seq, s.event));
        }
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Box<dyn EventQueue>; 2] {
        [Box::new(HeapQueue::new()), Box::new(BucketQueue::new())]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.schedule(SimTime::from_millis(3), Event::PacketReady(0));
            q.schedule(SimTime::from_millis(1), Event::PacketReady(1));
            q.schedule(SimTime::from_millis(2), Event::PacketReady(2));
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(
                order,
                vec![
                    Event::PacketReady(1),
                    Event::PacketReady(2),
                    Event::PacketReady(0)
                ]
            );
        }
    }

    #[test]
    fn same_instant_is_fifo() {
        for mut q in both() {
            let t = SimTime::from_millis(5);
            for i in 0..10 {
                q.schedule(t, Event::PacketReady(i));
            }
            for i in 0..10 {
                let (_, e) = q.pop().unwrap();
                assert_eq!(e, Event::PacketReady(i));
            }
        }
    }

    #[test]
    fn pop_entry_exposes_schedule_order() {
        for mut q in both() {
            assert_eq!(q.next_seq(), 0);
            q.schedule(SimTime::from_millis(2), Event::NodeDown(0));
            q.schedule(SimTime::from_millis(1), Event::NodeUp(0));
            assert_eq!(q.next_seq(), 2);
            // Popped in time order, but seq reflects schedule order.
            let (_, seq, e) = q.pop_entry().unwrap();
            assert_eq!((seq, e), (1, Event::NodeUp(0)));
            let (_, seq, e) = q.pop_entry().unwrap();
            assert_eq!((seq, e), (0, Event::NodeDown(0)));
        }
    }

    #[test]
    fn len_and_empty() {
        for mut q in both() {
            assert!(q.is_empty());
            q.schedule(SimTime::ZERO, Event::ProviderTick(0));
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        for mut q in both() {
            q.schedule(SimTime::from_micros(10), Event::CcaDone(0));
            q.schedule(SimTime::from_micros(10), Event::TxStart(1));
            let (_, first) = q.pop().unwrap();
            // New event at the same time goes after already-queued ones.
            q.schedule(SimTime::from_micros(10), Event::BackoffExpired(2));
            let (_, second) = q.pop().unwrap();
            let (_, third) = q.pop().unwrap();
            assert_eq!(first, Event::CcaDone(0));
            assert_eq!(second, Event::TxStart(1));
            assert_eq!(third, Event::BackoffExpired(2));
        }
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        for mut q in both() {
            // Provider-tick cadence: far beyond one wheel revolution.
            q.schedule(SimTime::from_millis(250), Event::ProviderTick(0));
            q.schedule(SimTime::from_millis(500), Event::ProviderTick(0));
            q.schedule(SimTime::from_micros(5), Event::CcaDone(1));
            let times: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
            assert_eq!(
                times,
                vec![
                    SimTime::from_micros(5),
                    SimTime::from_millis(250),
                    SimTime::from_millis(500),
                ]
            );
        }
    }

    #[test]
    fn long_idle_gap_jumps_instead_of_scanning() {
        for mut q in both() {
            // Drain, idle for hours of simulated time, then schedule again:
            // the event lands in overflow and the pop jumps the cursor
            // straight to it (no slot-by-slot scan).
            q.schedule(SimTime::from_micros(1), Event::CcaDone(0));
            q.pop().unwrap();
            let far = SimTime::from_secs(3600);
            q.schedule(far, Event::ProviderTick(0));
            assert_eq!(q.pop(), Some((far, Event::ProviderTick(0))));
        }
    }

    #[test]
    fn entries_restore_preserves_pop_stream() {
        // Fill past the wheel horizon, pop a bit to advance the cursor,
        // then restore from the logical state: the remaining pop streams
        // must match entry for entry.
        let mut q = BucketQueue::new();
        q.schedule(SimTime::from_micros(30), Event::CcaDone(0));
        q.schedule(SimTime::from_micros(10), Event::PacketReady(1));
        q.schedule(SimTime::from_millis(250), Event::ProviderTick(0));
        q.schedule(SimTime::from_micros(10), Event::TxStart(1));
        q.schedule(SimTime::from_secs(2), Event::NodeDown(1));
        q.pop_entry().unwrap();
        let entries = q.entries();
        let mut r = BucketQueue::restore(&entries, q.next_seq());
        assert_eq!(r.len(), q.len());
        assert_eq!(r.next_seq(), q.next_seq());
        assert_eq!(r.entries(), entries);
        loop {
            let a = q.pop_entry();
            let b = r.pop_entry();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Restored queues keep minting from where the original left off.
        r.schedule(SimTime::from_secs(3), Event::NodeUp(1));
        assert_eq!(r.pop_entry().unwrap().1, q.next_seq());
    }

    #[test]
    fn heap_and_bucket_agree_on_randomized_workload() {
        // A deterministic LCG drives identical schedules into both queues
        // with interleaved pops; the pop streams must match exactly.
        let mut heap = HeapQueue::new();
        let mut bucket = BucketQueue::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for round in 0..2000 {
            let op = lcg() % 3;
            if op < 2 {
                // Mix of near-term (bucket-dense), same-instant, and
                // far-future (overflow) schedules, never in the past.
                let delta = match lcg() % 4 {
                    0 => 0,
                    1 => lcg() % 1_000,
                    2 => lcg() % 5_000_000,
                    _ => 30_000_000 + lcg() % 400_000_000,
                };
                let at = SimTime::from_nanos(now + delta);
                let ev = Event::PacketReady(round);
                heap.schedule(at, ev);
                bucket.schedule(at, ev);
            } else {
                let a = heap.pop_entry();
                let b = bucket.pop_entry();
                assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let a = heap.pop_entry();
            let b = bucket.pop_entry();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
