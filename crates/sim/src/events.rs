//! The event queue.
//!
//! A binary heap keyed by `(time, sequence)`; the monotone sequence number
//! makes same-instant ordering deterministic (insertion order), which is
//! essential for reproducible runs.

use nomc_units::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a node in the running simulation.
pub type NodeId = usize;

/// Identifies one transmission.
pub type TxId = u64;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The node's traffic source delivers the next frame to the MAC.
    PacketReady(NodeId),
    /// The node's CSMA backoff timer expired.
    BackoffExpired(NodeId),
    /// The node's CCA measurement window closed.
    CcaDone(NodeId),
    /// The node's radio finished RX→TX turnaround and begins emitting.
    TxStart(NodeId),
    /// Transmission `1` from node `0` left the air.
    TxEnd(NodeId, TxId),
    /// The receiver finished correlating the preamble/SFD of `1`.
    SyncDone(NodeId, TxId),
    /// DCN initializing-phase in-channel power sample.
    PowerSense(NodeId),
    /// Coarse periodic hook for time-based threshold rules (DCN Case II).
    ProviderTick(NodeId),
    /// Acknowledged mode: node `0` starts emitting the ACK for data
    /// transmission `1` (after RX→TX turnaround).
    AckStart(NodeId, TxId),
    /// Acknowledged mode: the sender's `macAckWaitDuration` for data
    /// transmission `1` expired.
    AckTimeout(NodeId, TxId),
    /// Fault injection: the node crashes (power loss). While down it
    /// neither transmits, senses, nor receives.
    NodeDown(NodeId),
    /// Fault injection: the node reboots with factory-fresh MAC and
    /// threshold state.
    NodeUp(NodeId),
    /// Fault injection: the node's CCA comparator latches *busy*.
    CcaStuckStart(NodeId),
    /// Fault injection: the latched CCA comparator releases.
    CcaStuckEnd(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Pops the earliest event with its schedule sequence number.
    ///
    /// The sequence number is minted at [`EventQueue::schedule`] time,
    /// so it totally orders *when events were scheduled* — the engine's
    /// fault layer uses it to discard events a crashed node scheduled
    /// in its previous life (see `runtime/faults.rs`).
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, Event)> {
        self.heap.pop().map(|s| (s.time, s.seq, s.event))
    }

    /// The sequence number the *next* scheduled event will receive.
    /// Every event currently in the queue has a smaller one.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), Event::PacketReady(0));
        q.schedule(SimTime::from_millis(1), Event::PacketReady(1));
        q.schedule(SimTime::from_millis(2), Event::PacketReady(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                Event::PacketReady(1),
                Event::PacketReady(2),
                Event::PacketReady(0)
            ]
        );
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, Event::PacketReady(i));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::PacketReady(i));
        }
    }

    #[test]
    fn pop_entry_exposes_schedule_order() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_seq(), 0);
        q.schedule(SimTime::from_millis(2), Event::NodeDown(0));
        q.schedule(SimTime::from_millis(1), Event::NodeUp(0));
        assert_eq!(q.next_seq(), 2);
        // Popped in time order, but seq reflects schedule order.
        let (_, seq, e) = q.pop_entry().unwrap();
        assert_eq!((seq, e), (1, Event::NodeUp(0)));
        let (_, seq, e) = q.pop_entry().unwrap();
        assert_eq!((seq, e), (0, Event::NodeDown(0)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, Event::ProviderTick(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Event::CcaDone(0));
        q.schedule(SimTime::from_micros(10), Event::TxStart(1));
        let (_, first) = q.pop().unwrap();
        // New event at the same time goes after already-queued ones.
        q.schedule(SimTime::from_micros(10), Event::BackoffExpired(2));
        let (_, second) = q.pop().unwrap();
        let (_, third) = q.pop().unwrap();
        assert_eq!(first, Event::CcaDone(0));
        assert_eq!(second, Event::TxStart(1));
        assert_eq!(third, Event::BackoffExpired(2));
    }
}
