//! Imm-ACK emission, delivery, and timeout.
//!
//! Acknowledged transfers (§VI measurement mode): after a successful
//! decode the receiver turns around and emits a 5-byte Imm-ACK; the
//! original sender either decodes it (sync + payload both clean) or
//! times out and retries.

use super::Engine;
use crate::events::{Event, EventQueue, NodeId, TxId};
use crate::medium::{self, Transmission};
use crate::trace::TraceKind;
use nomc_mac::MacEvent;
use nomc_rngcore::Rng;

impl Engine<'_, '_, '_> {
    /// The acking receiver starts emitting the Imm-ACK for `parent`.
    pub(crate) fn on_ack_start(&mut self, o: NodeId, parent: TxId) {
        let Some(parent_tx) = self.medium.get(parent) else {
            self.nodes[o].transmitting = false;
            return;
        };
        let sender = parent_tx.tx_node;
        let seq = parent_tx.seq;
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let (freq, tx_power, link) = {
            let node = &self.nodes[o];
            (node.freq, node.tx_power, node.link)
        };
        let node_count = self.nodes.len();
        let mut rx_power = Vec::with_capacity(node_count);
        for other in 0..node_count {
            if other == o {
                rx_power.push(tx_power);
            } else {
                let shadow = self.sc.propagation.shadowing.sample(&mut self.rng);
                rx_power.push(tx_power - self.loss[o][other] + shadow);
            }
        }
        let start = self.now;
        let end = start + self.ack_airtime;
        self.medium.add(Transmission {
            id,
            tx_node: o,
            link,
            frequency: freq,
            start,
            mpdu_start: start + self.mpdu_offset,
            end,
            seq,
            forced: false,
            rx_power,
        });
        self.acks.insert(id, (parent, sender));
        self.queue.schedule(end, Event::TxEnd(o, id));
    }

    /// At ACK airtime end: does the original sender decode it?
    pub(crate) fn try_deliver_ack(&mut self, ack_id: TxId, parent: TxId, sender: NodeId) {
        if self.nodes[sender].awaiting_ack != Some(parent) || self.nodes[sender].transmitting {
            return;
        }
        let Some(ack) = self.medium.get(ack_id) else {
            return;
        };
        // Co-channel, so no filter rejection; the preamble correlator's
        // margin applies as for any sync.
        let signal = ack.rx_power[sender];
        let freq = self.nodes[sender].freq;
        self.medium.interference_segments_into(
            ack_id,
            sender,
            freq,
            ack.start,
            ack.start + self.sync_dur,
            &mut self.seg_buf,
        );
        let p_sync = medium::sync_success_probability(
            &self.seg_buf,
            signal + self.sc.radio.sync_margin,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        self.medium.interference_segments_into(
            ack_id,
            sender,
            freq,
            ack.mpdu_start,
            ack.end,
            &mut self.seg_buf,
        );
        let (errors, _) = medium::sample_segment_errors(
            &mut self.rng,
            &self.seg_buf,
            signal,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        let decoded = errors == 0 && self.rng.gen::<f64>() < p_sync;
        if decoded {
            self.nodes[sender].awaiting_ack = None;
            self.obs
                .trace_kind(self.now, TraceKind::AckDelivered { tx: parent, sender });
            self.feed_mac(sender, MacEvent::AckResult { acked: true });
        }
    }

    /// `macAckWaitDuration` expired without the ACK arriving.
    pub(crate) fn on_ack_timeout(&mut self, n: NodeId, parent: TxId) {
        if self.nodes[n].awaiting_ack == Some(parent) {
            self.nodes[n].awaiting_ack = None;
            self.obs.trace_kind(
                self.now,
                TraceKind::AckTimedOut {
                    tx: parent,
                    sender: n,
                },
            );
            self.feed_mac(n, MacEvent::AckResult { acked: false });
        }
    }
}
