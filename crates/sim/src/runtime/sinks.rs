//! Built-in [`SimObserver`] implementations and the engine's fan-out.
//!
//! The engine's own bookkeeping — per-link metrics, the optional trace
//! and timeline recorders — is implemented with the same observer trait
//! external sinks use, so "what the engine records" and "what a plugin
//! can record" are one mechanism. `ObserverSet` (crate-private) owns
//! the built-ins
//! (statically dispatched) and fans every notification out to the
//! externally supplied `&mut dyn SimObserver` slice.

use crate::events::Event;
use crate::metrics::{LinkMetrics, SimResult, TimelineRecord, TxOutcome};
use crate::runtime::observer::{
    PowerSample, SimObserver, ThresholdSample, TxOutcomeInfo, TxStartInfo,
};
use crate::scenario::Scenario;
use crate::trace::{TraceKind, TraceRecord};
use nomc_units::{Db, Dbm, SimDuration, SimTime};

/// Accumulates the per-link [`LinkMetrics`] counters.
///
/// Always attached; this is the collector behind [`SimResult::links`].
/// It is a pure sink — every counter mirrors a notification the engine
/// already emitted, so extracting it from the event loop cannot change
/// simulation behavior.
#[derive(Debug, Default)]
pub(crate) struct MetricsCollector {
    links: Vec<LinkMetrics>,
    record_error_records: bool,
}

impl MetricsCollector {
    pub(crate) fn new(links: Vec<LinkMetrics>, record_error_records: bool) -> Self {
        MetricsCollector {
            links,
            record_error_records,
        }
    }

    pub(crate) fn into_links(self) -> Vec<LinkMetrics> {
        self.links
    }

    /// The counters accumulated so far (checkpoint capture).
    pub(crate) fn links(&self) -> &[LinkMetrics] {
        &self.links
    }

    /// Overwrites the accumulated counters (checkpoint restore).
    pub(crate) fn restore_links(&mut self, links: Vec<LinkMetrics>) {
        self.links = links;
    }
}

impl SimObserver for MetricsCollector {
    fn on_tx_start(&mut self, info: &TxStartInfo) {
        if !info.measured {
            return;
        }
        let l = &mut self.links[info.link];
        l.sent += 1;
        if info.forced {
            l.forced_sent += 1;
        }
        if info.retry {
            l.retransmissions += 1;
        }
    }

    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        if !info.measured {
            return;
        }
        let l = &mut self.links[info.link];
        match info.outcome {
            TxOutcome::Received => {
                if info.duplicate {
                    l.duplicates += 1;
                } else {
                    l.received += 1;
                }
            }
            TxOutcome::CrcFailed => l.crc_failed += 1,
            TxOutcome::SyncMissed => l.sync_missed += 1,
            TxOutcome::ReceiverBusy => l.receiver_busy += 1,
        }
        if info.collided {
            l.collided += 1;
            if info.outcome == TxOutcome::Received {
                l.collided_received += 1;
            }
        }
        if self.record_error_records {
            if let Some(r) = &info.error_record {
                l.error_records.push(r.clone());
            }
        }
    }

    fn on_abandon(&mut self, link: usize, measured: bool) {
        if measured {
            self.links[link].abandoned += 1;
        }
    }
}

/// Collects the structured event trace ([`SimResult::trace`]).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    records: Vec<TraceRecord>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the recorder, yielding its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Overwrites the collected records (checkpoint restore).
    pub(crate) fn restore_records(&mut self, records: Vec<TraceRecord>) {
        self.records = records;
    }
}

impl SimObserver for TraceRecorder {
    fn wants_trace(&self) -> bool {
        true
    }

    fn on_trace(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Collects the Fig. 3-style transmission timeline
/// ([`SimResult::timeline`]).
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    records: Vec<TimelineRecord>,
}

impl TimelineRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TimelineRecorder::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[TimelineRecord] {
        &self.records
    }

    /// Consumes the recorder, yielding its records.
    pub fn into_records(self) -> Vec<TimelineRecord> {
        self.records
    }

    /// Overwrites the collected records (checkpoint restore).
    pub(crate) fn restore_records(&mut self, records: Vec<TimelineRecord>) {
        self.records = records;
    }
}

impl SimObserver for TimelineRecorder {
    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        if info.measured {
            self.records.push(TimelineRecord {
                link: info.link,
                start: info.start,
                end: info.end,
                outcome: info.outcome,
                collided: info.collided,
            });
        }
    }
}

/// Streams radio-energy accounting from live transmissions.
///
/// Accumulates each link's measured-window TX airtime from
/// [`SimObserver::on_tx_start`] (data frames; ACKs are accounted to
/// their own link's receiver, which this transmitter-side meter does
/// not model) and converts it to [`crate::energy::EnergyEstimate`]s at
/// run end using the CC2420 supply currents — the streaming counterpart
/// of [`crate::energy::transmitter_energy`].
#[derive(Debug, Default)]
pub struct EnergyMeter {
    tx_time: Vec<SimDuration>,
    estimates: Vec<crate::energy::EnergyEstimate>,
}

impl EnergyMeter {
    /// A meter with no airtime accumulated yet.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accumulated measured-window TX airtime per link.
    pub fn tx_time(&self) -> &[SimDuration] {
        &self.tx_time
    }

    /// Per-link energy estimates; filled in by
    /// [`SimObserver::on_run_end`].
    pub fn estimates(&self) -> &[crate::energy::EnergyEstimate] {
        &self.estimates
    }
}

impl SimObserver for EnergyMeter {
    fn on_tx_start(&mut self, info: &TxStartInfo) {
        if !info.measured {
            return;
        }
        if self.tx_time.len() <= info.link {
            self.tx_time.resize(info.link + 1, SimDuration::ZERO);
        }
        self.tx_time[info.link] += info.end.saturating_since(info.at);
    }

    fn on_run_end(&mut self, result: &SimResult) {
        use crate::energy::SUPPLY_VOLTS;
        use nomc_radio::power::current;
        self.tx_time
            .resize(result.tx_powers.len(), SimDuration::ZERO);
        self.estimates = self
            .tx_time
            .iter()
            .zip(&result.tx_powers)
            .map(|(&t, &p)| {
                let tx_time = t.min(result.measured);
                let rx_time = result.measured - tx_time;
                let tx_mj = current::tx_ma(p) * SUPPLY_VOLTS * tx_time.as_secs_f64();
                let rx_mj = current::RX_MA * SUPPLY_VOLTS * rx_time.as_secs_f64();
                crate::energy::EnergyEstimate {
                    tx_time,
                    rx_time,
                    total_mj: tx_mj + rx_mj,
                }
            })
            .collect();
    }
}

/// Streams trace records as JSON lines into any [`std::io::Write`].
///
/// The streaming counterpart of [`TraceRecorder`] +
/// [`crate::trace::to_jsonl`]: nothing is buffered in simulation
/// memory, so arbitrarily long runs can be traced to disk (the CLI's
/// `--trace` uses this). The first I/O error stops further writes and
/// is surfaced by [`JsonlTracer::finish`].
#[derive(Debug)]
pub struct JsonlTracer<W: std::io::Write> {
    writer: W,
    records: u64,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> JsonlTracer<W> {
    /// Wraps a writer (use a buffered one for files).
    pub fn new(writer: W) -> Self {
        JsonlTracer {
            writer,
            records: 0,
            error: None,
        }
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the record count, or the first I/O error.
    pub fn finish(mut self) -> std::io::Result<u64> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.records)
    }
}

impl<W: std::io::Write> SimObserver for JsonlTracer<W> {
    fn wants_trace(&self) -> bool {
        true
    }

    fn on_trace(&mut self, record: &TraceRecord) {
        use nomc_json::ToJson;
        if self.error.is_some() {
            return;
        }
        let line = record.to_json().dump();
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
        } else {
            self.records += 1;
        }
    }
}

/// Per-bin recovery metrics around a known fault instant.
///
/// Attach to a fault-injected run (see [`crate::scenario::FaultPlan`])
/// to quantify graceful degradation on one link: goodput is bucketed
/// into fixed time bins, the pre-fault bins establish a steady-state
/// baseline, and the post-fault bins yield the dip depth and the time
/// until goodput returns to (a fraction of) the baseline. Threshold
/// excursions — how far the link's CCA threshold strays from its
/// pre-fault value while recovering — ride along via
/// [`SimObserver::on_threshold_change`].
///
/// Like every observer this is a write-only sink: attaching it cannot
/// perturb the run it measures.
#[derive(Debug)]
pub struct RecoveryMeter {
    link: usize,
    bin: SimDuration,
    fault_at: SimTime,
    warmup: SimDuration,
    /// Non-duplicate successful deliveries per time bin.
    bins: Vec<u64>,
    /// Last effective threshold observed before the fault instant.
    thr_before: Option<Dbm>,
    /// Largest |threshold − pre-fault threshold| observed afterwards.
    excursion: Db,
}

/// What a [`RecoveryMeter`] measured, see [`RecoveryMeter::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Mean deliveries per bin over the pre-fault steady state.
    pub baseline_per_bin: f64,
    /// Smallest post-fault bin (the dip floor), in deliveries per bin.
    pub dip_per_bin: u64,
    /// Time from the fault instant until the first bin back at ≥ 90% of
    /// the baseline; `None` when goodput never recovered in-run.
    pub time_to_recover: Option<SimDuration>,
    /// Largest post-fault CCA-threshold deviation from the pre-fault
    /// value (dB; zero when thresholds never moved or were never seen).
    pub threshold_excursion: Db,
}

/// Recovery declared at the first post-fault bin reaching this fraction
/// of the pre-fault baseline.
const RECOVERY_FRACTION: f64 = 0.9;

impl RecoveryMeter {
    /// A meter for `link`, bucketing goodput into `bin`-sized bins and
    /// splitting pre/post at `fault_at`. Bins inside `warmup` are
    /// excluded from the baseline (the DCN initializing phase is not
    /// steady state). A zero `bin` is clamped to one nanosecond.
    pub fn new(link: usize, bin: SimDuration, fault_at: SimTime, warmup: SimDuration) -> Self {
        RecoveryMeter {
            link,
            bin: bin.max(SimDuration::from_nanos(1)),
            fault_at,
            warmup,
            bins: Vec::new(),
            thr_before: None,
            excursion: Db::ZERO,
        }
    }

    /// Non-duplicate deliveries per bin, from run start.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    fn bin_index(&self, at: SimTime) -> usize {
        (at.saturating_since(SimTime::ZERO).as_nanos() / self.bin.as_nanos()) as usize
    }

    /// Summarizes the run recorded so far.
    pub fn report(&self) -> RecoveryReport {
        let first_steady = self.bin_index(SimTime::ZERO + self.warmup);
        let fault_bin = self.bin_index(self.fault_at);
        let pre: &[u64] = self
            .bins
            .get(first_steady..fault_bin.min(self.bins.len()))
            .unwrap_or(&[]);
        let baseline = if pre.is_empty() {
            0.0
        } else {
            pre.iter().sum::<u64>() as f64 / pre.len() as f64
        };
        let post_start = (fault_bin + 1).min(self.bins.len());
        let post: &[u64] = self.bins.get(post_start..).unwrap_or(&[]);
        let dip = post.iter().copied().min().unwrap_or(0);
        let time_to_recover = post
            .iter()
            .position(|&b| b as f64 >= RECOVERY_FRACTION * baseline)
            .map(|i| {
                // Recovered by the end of that bin.
                let bin_end =
                    SimDuration::from_nanos((post_start + i + 1) as u64 * self.bin.as_nanos());
                (SimTime::ZERO + bin_end).saturating_since(self.fault_at)
            });
        RecoveryReport {
            baseline_per_bin: baseline,
            dip_per_bin: dip,
            time_to_recover,
            threshold_excursion: self.excursion,
        }
    }
}

impl SimObserver for RecoveryMeter {
    fn wants_thresholds(&self) -> bool {
        true
    }

    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        if info.link != self.link || info.outcome != TxOutcome::Received || info.duplicate {
            return;
        }
        let idx = self.bin_index(info.start);
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
    }

    fn on_threshold_change(&mut self, sample: &ThresholdSample) {
        if sample.link != self.link {
            return;
        }
        if sample.at < self.fault_at {
            self.thr_before = Some(sample.threshold);
        } else if let Some(before) = self.thr_before {
            let dev = sample.threshold - before;
            self.excursion = self.excursion.max(Db::new(dev.value().abs()));
        }
    }
}

/// The engine's observer fan-out: built-in sinks plus external plugins.
///
/// Built-ins are concrete fields (static dispatch on the hot path);
/// externals are the caller's `&mut dyn SimObserver` slice. The
/// `wants_trace`/`wants_thresholds` capabilities are sampled once at
/// construction.
pub(crate) struct ObserverSet<'o, 'e> {
    pub(crate) metrics: MetricsCollector,
    pub(crate) trace: Option<TraceRecorder>,
    pub(crate) timeline: Option<TimelineRecorder>,
    externals: &'o mut [&'e mut dyn SimObserver],
    wants_trace: bool,
    wants_thresholds: bool,
}

impl<'o, 'e> ObserverSet<'o, 'e> {
    pub(crate) fn new(
        sc: &Scenario,
        links: Vec<LinkMetrics>,
        externals: &'o mut [&'e mut dyn SimObserver],
    ) -> Self {
        let wants_trace = sc.record_trace || externals.iter().any(|o| o.wants_trace());
        let wants_thresholds = externals.iter().any(|o| o.wants_thresholds());
        ObserverSet {
            metrics: MetricsCollector::new(links, sc.record_error_records),
            trace: sc.record_trace.then(TraceRecorder::new),
            timeline: sc.record_timeline.then(TimelineRecorder::new),
            externals,
            wants_trace,
            wants_thresholds,
        }
    }

    /// Whether any sink consumes threshold-change samples.
    pub(crate) fn wants_thresholds(&self) -> bool {
        self.wants_thresholds
    }

    pub(crate) fn event(&mut self, now: SimTime, ev: &Event) {
        for o in self.externals.iter_mut() {
            o.on_event(now, ev);
        }
    }

    /// Builds and fans out a trace record, when anything wants traces.
    pub(crate) fn trace_kind(&mut self, at: SimTime, kind: TraceKind) {
        if !self.wants_trace {
            return;
        }
        let record = TraceRecord { at, kind };
        if let Some(t) = &mut self.trace {
            t.on_trace(&record);
        }
        for o in self.externals.iter_mut() {
            o.on_trace(&record);
        }
    }

    pub(crate) fn tx_start(&mut self, info: &TxStartInfo) {
        self.metrics.on_tx_start(info);
        for o in self.externals.iter_mut() {
            o.on_tx_start(info);
        }
    }

    pub(crate) fn tx_outcome(&mut self, info: &TxOutcomeInfo) {
        self.metrics.on_tx_outcome(info);
        if let Some(t) = &mut self.timeline {
            t.on_tx_outcome(info);
        }
        for o in self.externals.iter_mut() {
            o.on_tx_outcome(info);
        }
    }

    pub(crate) fn abandon(&mut self, link: usize, measured: bool) {
        self.metrics.on_abandon(link, measured);
        for o in self.externals.iter_mut() {
            o.on_abandon(link, measured);
        }
    }

    pub(crate) fn threshold_change(
        &mut self,
        node: usize,
        link: usize,
        threshold: Dbm,
        at: SimTime,
    ) {
        let sample = ThresholdSample {
            node,
            link,
            threshold,
            at,
        };
        for o in self.externals.iter_mut() {
            o.on_threshold_change(&sample);
        }
    }

    pub(crate) fn power_sample(&mut self, sample: &PowerSample) {
        for o in self.externals.iter_mut() {
            o.on_power_sample(sample);
        }
    }

    pub(crate) fn run_end(&mut self, result: &SimResult) {
        for o in self.externals.iter_mut() {
            o.on_run_end(result);
        }
    }

    /// Drains the built-in collectors for [`SimResult`] assembly.
    pub(crate) fn take_collected(
        &mut self,
    ) -> (Vec<LinkMetrics>, Vec<TimelineRecord>, Vec<TraceRecord>) {
        (
            std::mem::take(&mut self.metrics).into_links(),
            self.timeline
                .take()
                .map(TimelineRecorder::into_records)
                .unwrap_or_default(),
            self.trace
                .take()
                .map(TraceRecorder::into_records)
                .unwrap_or_default(),
        )
    }
}
