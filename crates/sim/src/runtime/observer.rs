//! The [`SimObserver`] trait: pluggable sinks for engine events.
//!
//! The event loop emits a small set of typed notifications; anything
//! that wants to watch a run — trace recorders, metrics collectors,
//! energy meters, streaming exporters — implements this trait and is
//! passed to [`crate::engine::run_with`]. Observers are strictly
//! *write-only* sinks: nothing they do can feed back into the
//! simulation, so a run produces bit-identical results whatever
//! observers are attached.
//!
//! All hooks have empty default bodies; implement only what you need.
//! The two `wants_*` methods let the engine skip building payloads
//! nobody consumes (they are sampled once at startup, so answers must
//! not change mid-run).

use crate::events::{Event, NodeId, TxId};
use crate::metrics::{ErrorRecord, SimResult, TxOutcome};
use crate::trace::TraceRecord;
use nomc_units::{Dbm, SimTime};

/// A data frame's first symbol left the antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct TxStartInfo {
    /// Transmission id.
    pub tx: TxId,
    /// Transmitting node.
    pub node: NodeId,
    /// Global link index.
    pub link: usize,
    /// Frame sequence number within the link.
    pub seq: u32,
    /// Whether the transmit-anyway policy forced it out.
    pub forced: bool,
    /// Whether this is a retransmission (acknowledged mode).
    pub retry: bool,
    /// Whether the frame started inside the measurement window.
    pub measured: bool,
    /// First symbol on air.
    pub at: SimTime,
    /// Last symbol on air.
    pub end: SimTime,
}

/// A data frame finished at its intended receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct TxOutcomeInfo {
    /// Transmission id.
    pub tx: TxId,
    /// Global link index.
    pub link: usize,
    /// The intended receiver.
    pub receiver: NodeId,
    /// How the frame fared there.
    pub outcome: TxOutcome,
    /// Whether another transmission overlapped it above the collision
    /// floor (the paper's CPRR predicate).
    pub collided: bool,
    /// Whether a successful decode was a duplicate delivery (its
    /// predecessor's ACK was lost).
    pub duplicate: bool,
    /// Whether the frame started inside the measurement window.
    pub measured: bool,
    /// First symbol on air.
    pub start: SimTime,
    /// Last symbol on air.
    pub end: SimTime,
    /// Bit-error profile, present exactly when the outcome is
    /// [`TxOutcome::CrcFailed`] and the frame was measured.
    pub error_record: Option<ErrorRecord>,
}

/// One RSSI power-sensing sample (DCN initializing phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sensing node.
    pub node: NodeId,
    /// Its global link index.
    pub link: usize,
    /// RSSI-register reading.
    pub reading: Dbm,
    /// Sample time.
    pub at: SimTime,
}

/// A node's effective (post-clamp) CCA threshold changed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSample {
    /// The adapting node.
    pub node: NodeId,
    /// Its global link index.
    pub link: usize,
    /// The new effective threshold.
    pub threshold: Dbm,
    /// When the change took effect.
    pub at: SimTime,
}

/// A pluggable sink for simulation events.
///
/// See the [module docs](self) for the contract. The built-in sinks in
/// [`crate::runtime::sinks`] implement this same trait; external
/// observers passed to [`crate::engine::run_with`] get every hook the
/// built-ins do.
pub trait SimObserver {
    /// Whether this observer consumes [`SimObserver::on_trace`]. Trace
    /// records are only constructed when someone wants them; sampled
    /// once at startup.
    fn wants_trace(&self) -> bool {
        false
    }

    /// Whether this observer consumes
    /// [`SimObserver::on_threshold_change`]. Threshold watching costs a
    /// provider read around every mutation; sampled once at startup.
    fn wants_thresholds(&self) -> bool {
        false
    }

    /// Called for every event popped from the queue, before it is
    /// handled.
    fn on_event(&mut self, _now: SimTime, _event: &Event) {}

    /// A structured trace record was produced (gated by
    /// [`SimObserver::wants_trace`] or the scenario's `record_trace`).
    fn on_trace(&mut self, _record: &TraceRecord) {}

    /// A data frame went on air.
    fn on_tx_start(&mut self, _info: &TxStartInfo) {}

    /// A data frame completed at its intended receiver.
    fn on_tx_outcome(&mut self, _info: &TxOutcomeInfo) {}

    /// A sender abandoned a frame after exhausting its retries.
    fn on_abandon(&mut self, _link: usize, _measured: bool) {}

    /// A node's effective CCA threshold changed (gated by
    /// [`SimObserver::wants_thresholds`]).
    fn on_threshold_change(&mut self, _sample: &ThresholdSample) {}

    /// A node took an RSSI power-sensing sample.
    fn on_power_sample(&mut self, _sample: &PowerSample) {}

    /// The run finished; `result` is the final [`SimResult`].
    fn on_run_end(&mut self, _result: &SimResult) {}
}
