//! Per-node runtime state and node-local event handling.
//!
//! [`Node`] is one mote's live state: its MAC engine (senders), CCA
//! threshold [`Provider`], traffic pacing, and radio occupancy. The
//! handlers here cover everything that happens *at* a node without a
//! frame on the air: packet arrivals, MAC command application, next
//! packet scheduling, and the CCA read.

use super::Engine;
use crate::events::{Event, EventQueue, NodeId, TxId};
use crate::scenario::TrafficModel;
use crate::trace::TraceKind;
use nomc_core::CcaAdjustor;
use nomc_mac::{CcaThresholdProvider, FixedThreshold, MacCommand, MacEngine, MacEvent, MacStats};
use nomc_units::{Dbm, Megahertz, SimTime};

/// CCA-threshold provider dispatch (kept as an enum so nodes stay
/// `Clone`-free but simple).
#[derive(Debug)]
pub(crate) enum Provider {
    Fixed(FixedThreshold),
    // Boxed: the adjustor (ring buffers + watchdog state) dwarfs the
    // fixed variant, and nodes hold one provider for a whole run.
    Dcn(Box<CcaAdjustor>),
}

impl Provider {
    pub(crate) fn threshold(&self, now: SimTime) -> Dbm {
        match self {
            Provider::Fixed(p) => p.threshold(now),
            Provider::Dcn(p) => p.threshold(now),
        }
    }

    pub(crate) fn on_cochannel_packet(&mut self, rssi: Dbm, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_cochannel_packet(rssi, now),
            Provider::Dcn(p) => p.on_cochannel_packet(rssi, now),
        }
    }

    pub(crate) fn on_power_sense(&mut self, power: Dbm, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_power_sense(power, now),
            Provider::Dcn(p) => p.on_power_sense(power, now),
        }
    }

    pub(crate) fn wants_power_sensing(&self, now: SimTime) -> bool {
        match self {
            Provider::Fixed(p) => p.wants_power_sensing(now),
            Provider::Dcn(p) => p.wants_power_sensing(now),
        }
    }

    pub(crate) fn on_tick(&mut self, now: SimTime) {
        match self {
            Provider::Fixed(p) => p.on_tick(now),
            Provider::Dcn(p) => p.on_tick(now),
        }
    }

    /// Resets the provider to its power-on state (node reboot). Fixed
    /// thresholds have no learned state; a DCN adjustor re-enters the
    /// initializing phase with a fresh `T_I` window.
    pub(crate) fn reinitialize(&mut self, now: SimTime) {
        match self {
            Provider::Fixed(_) => {}
            Provider::Dcn(p) => p.reinitialize(now),
        }
    }
}

/// An in-progress reception at one node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RxAttempt {
    pub(crate) tx_id: TxId,
    pub(crate) synced: bool,
}

/// Per-node runtime state.
#[derive(Debug)]
pub(crate) struct Node {
    /// Global link index (for senders and receivers alike).
    pub(crate) link: usize,
    pub(crate) is_sender: bool,
    pub(crate) freq: Megahertz,
    pub(crate) tx_power: Dbm,
    pub(crate) mac: Option<MacEngine>,
    pub(crate) provider: Option<Provider>,
    pub(crate) oracle: bool,
    pub(crate) traffic: TrafficModel,
    pub(crate) stats: MacStats,
    pub(crate) rx: Option<RxAttempt>,
    pub(crate) transmitting: bool,
    pub(crate) next_interval_at: SimTime,
    /// `forced` flag carried from `BeginTransmit` to `TxStart`.
    pub(crate) forced_next: bool,
    pub(crate) seq: u32,
    /// Whether this node's network uses acknowledged transfers.
    pub(crate) acknowledged: bool,
    /// Data transmission we are awaiting an ACK for (senders).
    pub(crate) awaiting_ack: Option<TxId>,
    /// Most recent transmission id this node emitted (senders).
    pub(crate) last_tx: TxId,
    /// Sequence number of the last frame delivered here (receivers;
    /// duplicate suppression for lost ACKs).
    pub(crate) last_rx_seq: Option<u32>,
    /// Store-and-forward credits: frames delivered upstream and not yet
    /// forwarded (Forward traffic only).
    pub(crate) credits: u64,
    /// Forwarding sender is idle and waiting for a credit.
    pub(crate) wants_packet: bool,
    /// Fault state: the node has crashed and not (yet) rebooted.
    pub(crate) down: bool,
    /// Fault state: the CCA comparator is latched *busy*.
    pub(crate) cca_stuck: bool,
    /// Fault state: RSSI calibration drift installed on this node
    /// (offset computed as a pure function of time — no queue events,
    /// no randomness).
    pub(crate) drift: Option<crate::scenario::DriftFault>,
    /// Events scheduled before this queue sequence number belong to a
    /// previous life of the node (before its last crash) and are
    /// discarded by the dispatcher (see `runtime/faults.rs`).
    pub(crate) stale_before_seq: u64,
}

impl Engine<'_, '_, '_> {
    pub(crate) fn on_packet_ready(&mut self, n: NodeId) {
        if self.now >= SimTime::ZERO + self.sc.duration {
            return; // no new frames after the run ends
        }
        let node = &mut self.nodes[n];
        node.stats.enqueued += 1;
        // A new frame gets a new sequence number; retransmissions of the
        // same frame (ACK mode) keep it.
        node.seq += 1;
        debug_assert!(node.mac.as_ref().is_some_and(MacEngine::is_idle));
        self.feed_mac(n, MacEvent::PacketReady);
    }

    pub(crate) fn feed_mac(&mut self, n: NodeId, ev: MacEvent) {
        let node = &mut self.nodes[n];
        let cmd = node
            .mac
            .as_mut()
            .expect("feed_mac on a receiver node")
            .handle(ev, &mut self.rng);
        self.apply_command(n, cmd);
    }

    pub(crate) fn apply_command(&mut self, n: NodeId, cmd: MacCommand) {
        match cmd {
            MacCommand::SetBackoffTimer(d) => {
                self.queue.schedule(self.now + d, Event::BackoffExpired(n));
            }
            MacCommand::PerformCca => {
                let d = self.nodes[n]
                    .mac
                    .as_ref()
                    .expect("sender")
                    .params()
                    .cca_duration;
                self.queue.schedule(self.now + d, Event::CcaDone(n));
            }
            MacCommand::BeginTransmit { forced } => {
                let turnaround = self.nodes[n]
                    .mac
                    .as_ref()
                    .expect("sender")
                    .params()
                    .turnaround;
                // The radio switches to TX: abort any reception in progress.
                self.nodes[n].rx = None;
                self.nodes[n].forced_next = forced;
                self.queue
                    .schedule(self.now + turnaround, Event::TxStart(n));
            }
            MacCommand::DeclareFailure => {
                self.nodes[n].stats.access_failures += 1;
                self.schedule_next_packet(n);
            }
            MacCommand::CompletePacket => {
                self.schedule_next_packet(n);
            }
            MacCommand::WaitForAck(d) => {
                let parent = self.nodes[n].last_tx;
                self.nodes[n].awaiting_ack = Some(parent);
                self.queue
                    .schedule(self.now + d, Event::AckTimeout(n, parent));
            }
            MacCommand::AbandonPacket => {
                let node = &mut self.nodes[n];
                node.stats.abandoned += 1;
                let link = node.link;
                let measured = self.in_measured_window();
                self.obs.abandon(link, measured);
                self.schedule_next_packet(n);
            }
        }
    }

    pub(crate) fn schedule_next_packet(&mut self, n: NodeId) {
        let node = &mut self.nodes[n];
        let at = match node.traffic {
            TrafficModel::Saturated => {
                self.now
                    + node
                        .mac
                        .as_ref()
                        .expect("sender")
                        .params()
                        .post_tx_processing
            }
            TrafficModel::Interval(period) => {
                // Drift-free pacing; if the service time exceeded the
                // period, catch up to the next slot after `now`.
                let mut t = node.next_interval_at + period;
                while t <= self.now {
                    t += period;
                }
                node.next_interval_at = t;
                t
            }
            TrafficModel::Forward { .. } => {
                if node.credits > 0 {
                    node.credits -= 1;
                    let delay = node
                        .mac
                        .as_ref()
                        .expect("sender")
                        .params()
                        .post_tx_processing;
                    self.now + delay
                } else {
                    node.wants_packet = true;
                    return;
                }
            }
        };
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::PacketReady(n));
        }
    }

    pub(crate) fn on_cca_done(&mut self, n: NodeId) {
        // Let time-based threshold rules run before the read.
        self.provider_mutate(n, |p, now| p.on_tick(now));
        let node = &self.nodes[n];
        let (co, inter) = self.medium.sensed_components(n, node.freq, self.now);
        let noise = self.medium.noise();
        let sensed = if node.oracle {
            // §VII-C oracle: only the co-channel component counts.
            co + noise
        } else {
            co + inter + noise
        };
        let reading = self.rssi_read(n, sensed.to_dbm());
        let threshold = self.sc.radio.clamp_cca_threshold(
            node.provider
                .as_ref()
                .expect("sender has provider")
                .threshold(self.now),
        );
        // A latched-busy comparator (stuck-CCA fault) overrides the
        // comparison; the trace still records the real reading.
        let clear = reading < threshold && !node.cca_stuck;
        self.obs.trace_kind(
            self.now,
            TraceKind::Cca {
                node: n,
                sensed_dbm: reading,
                threshold_dbm: threshold,
                clear,
            },
        );
        let node = &mut self.nodes[n];
        if clear {
            node.stats.cca_clear += 1;
        } else {
            node.stats.cca_busy += 1;
        }
        self.feed_mac(n, MacEvent::CcaResult { clear });
    }
}
