//! The layered simulation runtime behind [`crate::engine`].
//!
//! The event loop is decomposed into focused modules, each owning one
//! concern of the discrete-event machine:
//!
//! * [`dispatch`](self) — bootstrap, the main loop, and event routing,
//! * `node` — per-node runtime state, MAC command application, traffic
//!   pacing, and CCA handling,
//! * `tx` — the data-frame life cycle: TxStart, sync, decode, TxEnd,
//! * `ack` — Imm-ACK emission, delivery, and timeout,
//! * `sense` — RSSI power sensing and provider housekeeping ticks,
//! * [`observer`] — the pluggable [`observer::SimObserver`] sink trait,
//! * [`sinks`] — built-in observers (metrics, trace, timeline, energy,
//!   JSONL streaming) and the engine's fan-out,
//! * [`shard`] — deterministic sharded execution: interaction-component
//!   partition planning, conservative time-windowed shard workers, and
//!   the canonical boundary-event merge behind
//!   [`crate::engine::run_sharded`].
//!
//! `Engine` itself lives here (crate-private): the struct is shared
//! state, the submodules contribute `impl` blocks. All measurement side
//! effects (link counters, traces, timelines) flow through the
//! `sinks::ObserverSet`; the event handlers only *emit*
//! notifications, which keeps the simulation core free of bookkeeping
//! and lets external sinks plug in without touching the loop.
//!
//! Determinism contract: observers are write-only sinks and none of the
//! notification paths touches the RNG or the queue, so a run produces
//! bit-identical [`SimResult`]s whatever observers are attached.

pub mod observer;
pub mod shard;
pub mod sinks;
pub mod snapshot;

mod ack;
mod dispatch;
pub(crate) use dispatch::LegEnd;
mod faults;
mod node;
mod sense;
mod tx;

#[cfg(test)]
mod tests;

use crate::events::{BucketQueue, NodeId, TxId};
use crate::medium::{Medium, Segment};
use crate::metrics::{LinkMetrics, SimResult};
use crate::rng::Xoshiro256StarStar;
use crate::scenario::{Scenario, ThresholdMode, TrafficModel};
use node::{Node, Provider};
use nomc_core::CcaAdjustor;
use nomc_mac::{FixedThreshold, MacEngine, MacStats};
use nomc_radio::timing;
use nomc_rngcore::SeedableRng;
use nomc_units::{Db, SimDuration, SimTime};
use observer::SimObserver;
use sinks::ObserverSet;
use std::collections::BTreeMap;
use tx::TxMeta;

/// Extra simulated time after `duration` during which in-flight frames
/// may still complete (no new frames start).
pub(crate) const DRAIN: SimDuration = SimDuration::from_millis(20);

/// Period of the provider housekeeping tick.
pub(crate) const TICK_PERIOD: SimDuration = SimDuration::from_millis(250);

/// The simulation engine: event queue, medium, per-node state, and the
/// observer fan-out. Constructed per run; consumed by
/// [`Engine::run`].
pub(crate) struct Engine<'a, 'o, 'e> {
    pub(crate) sc: &'a Scenario,
    pub(crate) now: SimTime,
    pub(crate) queue: BucketQueue,
    pub(crate) medium: Medium,
    pub(crate) nodes: Vec<Node>,
    /// Path loss (no shadowing) between node pairs.
    pub(crate) loss: Vec<Vec<Db>>,
    pub(crate) rng: Xoshiro256StarStar,
    pub(crate) next_tx_id: TxId,
    /// Intended receiver node of each global link.
    pub(crate) link_rx: Vec<NodeId>,
    /// Per-sender list of nodes whose centre-frequency distance makes
    /// them potential sync targets (ascending id). Node frequencies are
    /// fixed for a run, so the capture model's CFD predicate is
    /// precomputed once instead of being re-evaluated over every node on
    /// every TxStart; dynamic conditions (busy, power) are still checked
    /// per frame.
    pub(crate) sync_candidates: Vec<Vec<NodeId>>,
    /// Reused buffer for interference-segment queries (sync + decode):
    /// one allocation per run instead of one per query.
    pub(crate) seg_buf: Vec<Segment>,
    pub(crate) tx_meta: BTreeMap<TxId, TxMeta>,
    /// Upstream link → its forwarding sender node.
    pub(crate) forwarders: BTreeMap<usize, NodeId>,
    pub(crate) airtime: SimDuration,
    pub(crate) sync_dur: SimDuration,
    pub(crate) mpdu_offset: SimDuration,
    /// In-flight ACK frames: ack tx id → (acked data tx id, its sender).
    pub(crate) acks: BTreeMap<TxId, (TxId, NodeId)>,
    pub(crate) ack_airtime: SimDuration,
    /// Measurement sinks: built-in collectors + external observers.
    pub(crate) obs: ObserverSet<'o, 'e>,
    pub(crate) events: u64,
    /// Deterministic event budget: the run stops (and reports
    /// exhaustion) after handling this many events. Wall-clock-free
    /// runaway protection for batch runners.
    pub(crate) max_events: u64,
    /// Whether the run stopped on the event budget rather than draining.
    pub(crate) exhausted: bool,
    /// Window-mode holdover: the first popped entry at or beyond the
    /// current window boundary, kept (with its original queue sequence
    /// number, which stale-event checks compare against) until the next
    /// [`Engine::run_window`] call. Always `None` in whole-run mode.
    pub(crate) held: Option<(SimTime, u64, crate::events::Event)>,
}

impl<'a, 'o, 'e> Engine<'a, 'o, 'e> {
    pub(crate) fn new(sc: &'a Scenario, externals: &'o mut [&'e mut dyn SimObserver]) -> Self {
        let mut nodes = Vec::new();
        let mut links = Vec::new();
        let mut link_rx = Vec::new();
        let mut positions = Vec::new();
        for (ni, network) in sc.deployment.networks.iter().enumerate() {
            let behavior = &sc.behaviors[ni];
            for (li, link) in network.links.iter().enumerate() {
                let global = links.len();
                let provider = match &behavior.threshold {
                    ThresholdMode::Fixed(level) | ThresholdMode::FixedOracle(level) => {
                        Provider::Fixed(FixedThreshold::new(*level))
                    }
                    ThresholdMode::Dcn(cfg) | ThresholdMode::DcnOracle(cfg) => Provider::Dcn(
                        Box::new(CcaAdjustor::new(*cfg, sc.radio.default_cca_threshold)),
                    ),
                };
                nodes.push(Node {
                    link: global,
                    is_sender: true,
                    freq: network.frequency,
                    tx_power: link.tx_power,
                    mac: Some(MacEngine::new(behavior.mac)),
                    provider: Some(provider),
                    oracle: behavior.threshold.is_oracle(),
                    traffic: behavior.traffic,
                    stats: MacStats::new(),
                    rx: None,
                    transmitting: false,
                    next_interval_at: SimTime::ZERO,
                    forced_next: false,
                    seq: 0,
                    acknowledged: behavior.mac.acknowledged,
                    awaiting_ack: None,
                    last_tx: 0,
                    last_rx_seq: None,
                    credits: 0,
                    wants_packet: false,
                    down: false,
                    cca_stuck: false,
                    drift: None,
                    stale_before_seq: 0,
                });
                positions.push(link.tx);
                nodes.push(Node {
                    link: global,
                    is_sender: false,
                    freq: network.frequency,
                    tx_power: link.tx_power,
                    mac: None,
                    provider: None,
                    oracle: false,
                    traffic: behavior.traffic,
                    stats: MacStats::new(),
                    rx: None,
                    transmitting: false,
                    next_interval_at: SimTime::ZERO,
                    forced_next: false,
                    seq: 0,
                    acknowledged: behavior.mac.acknowledged,
                    awaiting_ack: None,
                    last_tx: 0,
                    last_rx_seq: None,
                    credits: 0,
                    wants_packet: false,
                    down: false,
                    cca_stuck: false,
                    drift: None,
                    stale_before_seq: 0,
                });
                positions.push(link.rx);
                link_rx.push(nodes.len() - 1);
                links.push(LinkMetrics {
                    network: ni,
                    link_in_network: li,
                    ..LinkMetrics::default()
                });
            }
        }
        // Per-link traffic overrides (senders are at even node indices:
        // node 2·link is the sender of global link `link`).
        let mut forwarders: BTreeMap<usize, NodeId> = BTreeMap::new();
        for &(link, traffic) in &sc.link_traffic {
            let sender = link * 2;
            nodes[sender].traffic = traffic;
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.is_sender {
                if let TrafficModel::Forward { from_link } = node.traffic {
                    forwarders.insert(from_link, i);
                }
            }
        }
        let n = nodes.len();
        let mut loss = vec![vec![Db::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    loss[i][j] = sc
                        .propagation
                        .path_loss
                        .loss(positions[i].distance_to(positions[j]));
                }
            }
        }
        let mut medium = Medium::new(sc.propagation.acr.clone(), sc.propagation.noise.power());
        // Fault plan, medium side: jammer bursts become ambient energy
        // windows known from construction (they are part of the
        // scenario, not reactions to it). An empty plan adds nothing and
        // every query stays bit-identical to a fault-free medium.
        for j in &sc.faults.jammers {
            medium.add_ambient(j.frequency, j.power, j.at, j.at + j.duration);
        }
        // Fault plan, node side: RSSI calibration drift is a pure
        // function of time installed on the node (last drift for a node
        // wins, matching plan order).
        for d in &sc.faults.drifts {
            if let Some(node) = nodes.get_mut(d.node) {
                node.drift = Some(*d);
            }
        }
        let airtime = timing::airtime(sc.frame.ppdu_bytes());
        let sync_candidates = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&o| {
                        o != i
                            && sc
                                .radio
                                .capture_model
                                .is_sync_candidate(nodes[i].freq.distance_to(nodes[o].freq))
                    })
                    .collect()
            })
            .collect();
        Engine {
            sc,
            now: SimTime::ZERO,
            queue: BucketQueue::new(),
            medium,
            nodes,
            loss,
            rng: Xoshiro256StarStar::seed_from_u64(sc.seed),
            next_tx_id: 1,
            link_rx,
            sync_candidates,
            seg_buf: Vec::new(),
            tx_meta: BTreeMap::new(),
            forwarders,
            airtime,
            sync_dur: timing::sync_header_duration(),
            mpdu_offset: timing::BYTE * u64::from(timing::PPDU_HEADER_BYTES),
            acks: BTreeMap::new(),
            // Imm-ACK: 5-byte MPDU behind the 6-byte PPDU header.
            ack_airtime: timing::airtime(11),
            obs: ObserverSet::new(sc, links, externals),
            events: 0,
            max_events: u64::MAX,
            exhausted: false,
            held: None,
        }
    }

    /// Whether `now` falls inside the measurement window.
    pub(crate) fn in_measured_window(&self) -> bool {
        let t0 = SimTime::ZERO + self.sc.warmup;
        let t1 = SimTime::ZERO + self.sc.duration;
        self.now >= t0 && self.now < t1
    }

    pub(crate) fn provider_wants_sensing(&self, id: NodeId, now: SimTime) -> bool {
        self.nodes[id]
            .provider
            .as_ref()
            .is_some_and(|p| p.wants_power_sensing(now))
    }

    /// Applies `f` to node `n`'s provider (no-op for receivers), and
    /// when any observer watches thresholds, reads the effective
    /// (clamped) threshold around the mutation and reports changes.
    ///
    /// The threshold read is a pure function of the provider, so the
    /// watch has no effect on simulation behavior — it is skipped
    /// entirely when nothing wants it.
    pub(crate) fn provider_mutate(&mut self, n: NodeId, f: impl FnOnce(&mut Provider, SimTime)) {
        let now = self.now;
        if !self.obs.wants_thresholds() {
            if let Some(p) = self.nodes[n].provider.as_mut() {
                f(p, now);
            }
            return;
        }
        let (changed, link) = {
            let node = &mut self.nodes[n];
            let Some(p) = node.provider.as_mut() else {
                return;
            };
            let before = self.sc.radio.clamp_cca_threshold(p.threshold(now));
            f(p, now);
            let after = self.sc.radio.clamp_cca_threshold(p.threshold(now));
            ((before != after).then_some(after), node.link)
        };
        if let Some(t) = changed {
            self.obs.threshold_change(n, link, t, now);
        }
    }

    pub(crate) fn finalize(mut self) -> SimResult {
        let end = SimTime::ZERO + self.sc.duration;
        let mut mac_stats = Vec::new();
        let mut final_thresholds = Vec::new();
        let mut tx_powers = Vec::new();
        for node in &self.nodes {
            if node.is_sender {
                mac_stats.push(node.stats);
                tx_powers.push(node.tx_power);
                let t = node
                    .provider
                    .as_ref()
                    .map(|p| self.sc.radio.clamp_cca_threshold(p.threshold(end)))
                    .unwrap_or(self.sc.radio.default_cca_threshold);
                final_thresholds.push(t);
            }
        }
        let (links, timeline, trace) = self.obs.take_collected();
        let result = SimResult {
            measured: self.sc.duration - self.sc.warmup,
            links,
            network_frequencies: self
                .sc
                .deployment
                .networks
                .iter()
                .map(|n| n.frequency)
                .collect(),
            mac_stats,
            tx_powers,
            final_thresholds,
            timeline,
            trace,
            events: self.events,
        };
        self.obs.run_end(&result);
        result
    }
}
