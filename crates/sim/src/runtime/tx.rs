//! The data-frame life cycle: TxStart, sync acquisition, decode, TxEnd.
//!
//! A frame's engine-side record is [`TxMeta`]: decode results are
//! staged there (outcome, duplicate flag, bit-error record) and emitted
//! as one [`TxOutcomeInfo`] notification when the frame leaves the air,
//! so observers see a single authoritative per-frame outcome.

use super::node::RxAttempt;
use super::observer::{TxOutcomeInfo, TxStartInfo};
use super::Engine;
use crate::events::{Event, EventQueue, NodeId, TxId};
use crate::medium::{self, Transmission};
use crate::metrics::{ErrorRecord, TxOutcome};
use crate::trace::TraceKind;
use nomc_mac::MacEvent;
use nomc_radio::timing;
use nomc_rngcore::Rng;
use nomc_units::SimTime;

/// Engine-side metadata for an in-flight transmission.
#[derive(Debug)]
pub(crate) struct TxMeta {
    pub(crate) measured: bool,
    pub(crate) link: usize,
    pub(crate) intended_rx: NodeId,
    /// The intended receiver could not even attempt sync (busy/TX).
    pub(crate) intended_busy: bool,
    /// Outcome recorded during decode (None until TxEnd processing).
    pub(crate) outcome: Option<TxOutcome>,
    /// A successful decode was a duplicate delivery (its predecessor's
    /// ACK was lost); staged during decode.
    pub(crate) duplicate: bool,
    /// Bit-error profile of a failed decode at the intended receiver;
    /// staged during decode.
    pub(crate) error_record: Option<ErrorRecord>,
}

impl Engine<'_, '_, '_> {
    pub(crate) fn on_tx_start(&mut self, n: NodeId) {
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let node_count = self.nodes.len();
        let (freq, tx_power, link, forced, seq) = {
            let node = &mut self.nodes[n];
            node.transmitting = true;
            node.rx = None;
            node.last_tx = id;
            (
                node.freq,
                node.tx_power,
                node.link,
                node.forced_next,
                node.seq,
            )
        };
        // Per-observer received powers with fresh per-packet shadowing.
        let mut rx_power = Vec::with_capacity(node_count);
        for o in 0..node_count {
            if o == n {
                rx_power.push(tx_power);
            } else {
                let shadow = self.sc.propagation.shadowing.sample(&mut self.rng);
                rx_power.push(tx_power - self.loss[n][o] + shadow);
            }
        }
        let start = self.now;
        let end = start + self.airtime;
        let mpdu_start = start + self.mpdu_offset;
        let measured = {
            let t0 = SimTime::ZERO + self.sc.warmup;
            let t1 = SimTime::ZERO + self.sc.duration;
            start >= t0 && start < t1
        };
        let intended_rx = self.link_rx[link];
        // Offer sync to the precomputed CFD-eligible observers (the
        // skipped nodes would fail `is_sync_candidate` and do nothing;
        // see `Engine::sync_candidates`).
        let sync_at = start + self.sync_dur;
        for ci in 0..self.sync_candidates[n].len() {
            let o = self.sync_candidates[n][ci];
            let obs = &self.nodes[o];
            if obs.transmitting || obs.rx.is_some() {
                continue;
            }
            let cfd = freq.distance_to(obs.freq);
            let coupled = rx_power[o] - self.medium.acr().rejection(cfd);
            if !self
                .sc
                .radio
                .capture_model
                .clears_sensitivity(coupled, self.sc.radio.sensitivity)
            {
                continue;
            }
            self.nodes[o].rx = Some(RxAttempt {
                tx_id: id,
                synced: false,
            });
            self.queue.schedule(sync_at, Event::SyncDone(o, id));
        }
        let intended_busy = {
            let r = &self.nodes[intended_rx];
            let locked_to_us = matches!(r.rx, Some(a) if a.tx_id == id);
            !locked_to_us && (r.transmitting || r.rx.is_some())
        };
        self.tx_meta.insert(
            id,
            TxMeta {
                measured,
                link,
                intended_rx,
                intended_busy,
                outcome: None,
                duplicate: false,
                error_record: None,
            },
        );
        let retrying = self.nodes[n]
            .mac
            .as_ref()
            .is_some_and(|m| m.retry_count() > 0);
        if measured {
            self.nodes[n].stats.transmitted += 1;
            if forced {
                self.nodes[n].stats.forced_transmissions += 1;
            }
            if retrying {
                self.nodes[n].stats.retransmissions += 1;
            }
        }
        self.obs.tx_start(&TxStartInfo {
            tx: id,
            node: n,
            link,
            seq,
            forced,
            retry: retrying,
            measured,
            at: start,
            end,
        });
        self.medium.add(Transmission {
            id,
            tx_node: n,
            link,
            frequency: freq,
            start,
            mpdu_start,
            end,
            seq,
            forced,
            rx_power,
        });
        self.obs.trace_kind(
            self.now,
            TraceKind::TxStart {
                node: n,
                tx: id,
                seq,
                forced,
            },
        );
        self.queue.schedule(end, Event::TxEnd(n, id));
    }

    pub(crate) fn on_sync_done(&mut self, o: NodeId, tx_id: TxId) {
        let Some(attempt) = self.nodes[o].rx else {
            return;
        };
        if attempt.tx_id != tx_id || attempt.synced || self.nodes[o].transmitting {
            return;
        }
        let Some(t) = self.medium.get(tx_id) else {
            self.nodes[o].rx = None;
            return;
        };
        let cfd = t.frequency.distance_to(self.nodes[o].freq);
        // The preamble correlator detects its known sequence several dB
        // below the payload decoding threshold (sync_margin).
        let coupled = t.rx_power[o] - self.medium.acr().rejection(cfd) + self.sc.radio.sync_margin;
        self.medium.interference_segments_into(
            tx_id,
            o,
            self.nodes[o].freq,
            t.start,
            t.start + self.sync_dur,
            &mut self.seg_buf,
        );
        let p = medium::sync_success_probability(
            &self.seg_buf,
            coupled,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        if self.rng.gen::<f64>() < p {
            self.nodes[o].rx = Some(RxAttempt {
                tx_id,
                synced: true,
            });
        } else {
            self.nodes[o].rx = None;
        }
    }

    pub(crate) fn on_tx_end(&mut self, n: NodeId, tx_id: TxId) {
        // The frame leaves the air: drop it from the medium's active
        // sets (instantaneous queries at now >= end already exclude it,
        // so this is pure index maintenance). It stays in the windowed
        // history for the segment/collision queries below.
        self.medium.retire(tx_id);
        // ACK frames complete differently: the acking receiver goes idle
        // and the original sender tries to decode the ACK.
        if let Some((parent, sender)) = self.acks.remove(&tx_id) {
            self.nodes[n].transmitting = false;
            self.try_deliver_ack(tx_id, parent, sender);
            return;
        }
        // 1. The transmitter returns to idle and paces its next frame —
        // unless it crashed mid-flight (dead nodes pace nothing) or this
        // TxEnd belongs to a pre-crash life (`last_tx` resets on reboot,
        // so a since-rebooted node never mistakes the old frame's end
        // for its current one).
        if self.nodes[n].last_tx == tx_id {
            self.nodes[n].transmitting = false;
            if !self.nodes[n].down {
                self.feed_mac(n, MacEvent::TxDone);
            }
        }

        // 2. Locked receivers decode (ascending node id; decode never
        // touches another node's lock, so the in-place scan visits the
        // same set a pre-collected list would).
        for o in 0..self.nodes.len() {
            if self.nodes[o]
                .rx
                .is_some_and(|r| r.tx_id == tx_id && r.synced)
            {
                self.decode(o, tx_id);
                self.nodes[o].rx = None;
            }
        }

        // 3. The frame's single authoritative outcome notification.
        let Some(meta) = self.tx_meta.remove(&tx_id) else {
            return;
        };
        let Some(t) = self.medium.get(tx_id) else {
            return;
        };
        let (start, end) = (t.start, t.end);
        let intended_freq = self.nodes[meta.intended_rx].freq;
        let collided = self.medium.was_collided(
            tx_id,
            meta.intended_rx,
            intended_freq,
            start,
            end,
            self.sc.collision_floor,
        );
        let outcome = meta.outcome.unwrap_or(if meta.intended_busy {
            TxOutcome::ReceiverBusy
        } else {
            TxOutcome::SyncMissed
        });
        self.obs.tx_outcome(&TxOutcomeInfo {
            tx: tx_id,
            link: meta.link,
            receiver: meta.intended_rx,
            outcome,
            collided,
            duplicate: meta.duplicate,
            measured: meta.measured,
            start,
            end,
            error_record: meta.error_record,
        });
        if meta.measured {
            let outcome_str = match outcome {
                TxOutcome::Received => "received",
                TxOutcome::CrcFailed => "crc_failed",
                TxOutcome::SyncMissed => "sync_missed",
                TxOutcome::ReceiverBusy => "receiver_busy",
            };
            self.obs.trace_kind(
                self.now,
                TraceKind::Outcome {
                    tx: tx_id,
                    receiver: meta.intended_rx,
                    outcome: outcome_str,
                },
            );
        }
    }

    /// Decodes transmission `tx_id` at node `o` (which stayed locked to
    /// it until the end).
    fn decode(&mut self, o: NodeId, tx_id: TxId) {
        let Some(t) = self.medium.get(tx_id) else {
            return;
        };
        let obs_freq = self.nodes[o].freq;
        let cfd = t.frequency.distance_to(obs_freq);
        // Foreign-channel captures (802.11b-like mode only) waste the
        // receiver's time but never yield a usable frame.
        if cfd.value() >= 0.5 {
            return;
        }
        let signal = t.rx_power[o];
        let (measured, intended_rx) = match self.tx_meta.get(&tx_id) {
            Some(m) => (m.measured, m.intended_rx),
            None => (false, usize::MAX),
        };
        self.medium.interference_segments_into(
            tx_id,
            o,
            obs_freq,
            t.mpdu_start,
            t.end,
            &mut self.seg_buf,
        );
        let (errors, bits) = medium::sample_segment_errors(
            &mut self.rng,
            &self.seg_buf,
            signal,
            self.medium.noise(),
            self.sc.radio.ber_model,
        );
        let mut new_record = None;
        let decoded = if errors == 0 {
            true
        } else if self.sc.record_error_positions {
            // Full-fidelity path: flip sampled bit positions in the real
            // MPDU image and run the real FCS check (a corrupted frame
            // passes CRC only with probability ≈ 2⁻¹⁶).
            let tx_node_seq = t.seq;
            let src = t.tx_node as u32;
            let mut mpdu = self.sc.frame.build_mpdu(src, tx_node_seq);
            let positions =
                nomc_phy::biterror::sample_error_positions(&mut self.rng, bits, errors.min(bits));
            for &p in &positions {
                let byte = (p / 8) as usize;
                if byte < mpdu.len() {
                    mpdu[byte] ^= 1 << (p % 8);
                }
            }
            let ok = nomc_radio::crc::verify_fcs(&mpdu);
            if !ok && o == intended_rx && measured {
                new_record = Some(ErrorRecord {
                    error_bits: errors.min(bits),
                    total_bits: bits,
                    positions: Some(positions),
                });
            }
            ok
        } else {
            if o == intended_rx && measured {
                new_record = Some(ErrorRecord {
                    error_bits: errors.min(bits),
                    total_bits: bits,
                    positions: None,
                });
            }
            false
        };
        if o == intended_rx {
            let duplicate = decoded && self.nodes[o].last_rx_seq == Some(t.seq);
            if let Some(m) = self.tx_meta.get_mut(&tx_id) {
                m.outcome = Some(if decoded {
                    TxOutcome::Received
                } else {
                    TxOutcome::CrcFailed
                });
                m.duplicate = duplicate;
                m.error_record = new_record;
            }
            if decoded {
                let seq = t.seq;
                self.nodes[o].last_rx_seq = Some(seq);
            }
            if decoded && !duplicate {
                let link = self.nodes[o].link;
                if let Some(&f) = self.forwarders.get(&link) {
                    let delay = self.nodes[f]
                        .mac
                        .as_ref()
                        .expect("forwarder is a sender")
                        .params()
                        .post_tx_processing;
                    self.nodes[f].credits += 1;
                    if self.nodes[f].wants_packet {
                        self.nodes[f].wants_packet = false;
                        self.nodes[f].credits -= 1;
                        let at = self.now + delay;
                        if at < SimTime::ZERO + self.sc.duration {
                            self.queue.schedule(at, Event::PacketReady(f));
                        }
                    }
                }
            }
            // Acknowledged transfers: the receiver turns around and emits
            // an Imm-ACK (also for duplicates — their ACK was lost).
            if decoded && self.nodes[o].acknowledged {
                let turnaround = timing::TURNAROUND;
                self.nodes[o].transmitting = true;
                self.nodes[o].rx = None;
                self.queue
                    .schedule(self.now + turnaround, Event::AckStart(o, tx_id));
            }
        }
        if decoded {
            // Any successfully decoded co-channel frame feeds the
            // observer's CCA-threshold provider with its RSSI (the
            // paper's free information source).
            let rssi = self.rssi_read(o, signal);
            self.provider_mutate(o, |p, now| p.on_cochannel_packet(rssi, now));
        }
    }
}
