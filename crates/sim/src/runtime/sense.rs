//! RSSI power sensing and provider housekeeping ticks.
//!
//! DCN's initializing phase samples the RSSI register periodically to
//! find the channel's ambient level; the housekeeping tick lets
//! time-based threshold rules advance even on idle channels.

use super::node::Provider;
use super::observer::PowerSample;
use super::{Engine, TICK_PERIOD};
use crate::events::{Event, EventQueue, NodeId};
use nomc_units::{SimDuration, SimTime};

impl Engine<'_, '_, '_> {
    pub(crate) fn on_power_sense(&mut self, n: NodeId) {
        if !self.provider_wants_sensing(n, self.now) {
            return;
        }
        let node = &self.nodes[n];
        if !node.transmitting {
            let (freq, link) = (node.freq, node.link);
            let total = self.medium.sensed_total(n, freq, self.now);
            let reading = self.rssi_read(n, total.to_dbm());
            self.provider_mutate(n, |p, now| p.on_power_sense(reading, now));
            self.obs.power_sample(&PowerSample {
                node: n,
                link,
                reading,
                at: self.now,
            });
        }
        let interval = match &self.nodes[n].provider {
            Some(Provider::Dcn(adj)) => adj.config().power_sense_interval,
            _ => SimDuration::from_millis(1),
        };
        let at = self.now + interval;
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::PowerSense(n));
        }
    }

    pub(crate) fn on_provider_tick(&mut self, n: NodeId) {
        self.provider_mutate(n, |p, now| p.on_tick(now));
        let at = self.now + TICK_PERIOD;
        if at < SimTime::ZERO + self.sc.duration {
            self.queue.schedule(at, Event::ProviderTick(n));
        }
    }
}
