//! Deterministic fault injection: scheduling and event handlers.
//!
//! The scenario's [`crate::scenario::FaultPlan`] is expanded into
//! ordinary queue events once, at bootstrap, *after* the regular
//! bootstrap scheduling — so the RNG stream and the seq numbers of all
//! fault-free events are untouched, and an empty plan leaves the run
//! bit-identical to one simulated before the fault layer existed.
//! Fault delivery consumes no randomness anywhere: crash/reboot and
//! stuck-CCA windows are explicit queue events, jammer bursts are
//! ambient [`crate::medium::Medium`] energy installed at construction,
//! and RSSI drift is a pure function of time evaluated at read sites.
//!
//! Crash semantics ("last gasp" model):
//!
//! * a frame already on the air when its sender dies finishes its
//!   airtime (the medium committed it at TxStart), but the dead sender
//!   processes no MAC consequence of it;
//! * while down, a node ignores every node-initiated event (traffic,
//!   backoff, CCA, sensing, ticks, ACK machinery) and can neither sync
//!   to nor decode frames;
//! * on reboot the node is factory-fresh: new MAC engine, CCA-Adjustor
//!   re-entering the initializing phase (via
//!   [`Provider::reinitialize`](super::node::Provider::reinitialize)),
//!   cleared forwarding credits, and re-bootstrapped traffic/sensing
//!   events. The frame sequence counter survives (NV-backed, as on real
//!   motes), so receiver-side duplicate suppression stays sound.
//!
//! Stale-event hygiene: events a node scheduled in a previous life
//! (before its last crash) may still be queued for instants *after* the
//! reboot — e.g. an interval-traffic `PacketReady` a long period ahead.
//! Delivering them would fork the node's pacing chain. Every crash
//! therefore records the queue's current sequence watermark; the
//! dispatcher discards node-initiated events whose schedule seq
//! predates the node's last crash ([`Engine::is_stale`]).

use super::Engine;
use crate::events::{Event, EventQueue, NodeId};
use crate::trace::TraceKind;
use nomc_mac::MacEngine;
use nomc_units::{Db, Dbm, SimTime};

impl Engine<'_, '_, '_> {
    /// Expands the scenario's fault plan into queue events. Called once
    /// at the end of bootstrap; scheduling order is plan order (crashes,
    /// then stuck-CCA windows), so same plan ⇒ same seq numbers ⇒
    /// byte-identical runs.
    pub(crate) fn schedule_faults(&mut self) {
        // Clone the tiny plan so scheduling can borrow `self` mutably;
        // plans hold a handful of entries, not a traffic stream.
        let plan = self.sc.faults.clone();
        for c in &plan.crashes {
            self.queue.schedule(c.at, Event::NodeDown(c.node));
            if !c.down_for.is_zero() {
                self.queue
                    .schedule(c.at + c.down_for, Event::NodeUp(c.node));
            }
        }
        for s in &plan.stuck_cca {
            self.queue.schedule(s.at, Event::CcaStuckStart(s.node));
            self.queue
                .schedule(s.at + s.duration, Event::CcaStuckEnd(s.node));
        }
    }

    /// Whether an event addressed to node `n` was scheduled before the
    /// node's last crash (a remnant of its previous life).
    pub(crate) fn is_stale(&self, n: NodeId, seq: u64) -> bool {
        seq < self.nodes[n].stale_before_seq
    }

    /// The node's RSSI calibration error at `now`: zero before the ramp
    /// starts, linear over the ramp, then the full peak. Pure function
    /// of time — applying it at read sites keeps the on-air physics
    /// untouched (miscalibration, not propagation).
    pub(crate) fn drift_offset(&self, n: NodeId, now: SimTime) -> Db {
        let Some(d) = &self.nodes[n].drift else {
            return Db::ZERO;
        };
        if now < d.at {
            return Db::ZERO;
        }
        if d.ramp.is_zero() {
            return d.peak;
        }
        let elapsed = now.saturating_since(d.at);
        if elapsed >= d.ramp {
            d.peak
        } else {
            Db::new(d.peak.value() * (elapsed.as_secs_f64() / d.ramp.as_secs_f64()))
        }
    }

    /// An RSSI-register read at node `n`: the node's calibration drift
    /// (if any) offsets the analog level *before* register quantization,
    /// like a real front-end miscalibration would. Drift-free nodes take
    /// the exact pre-fault-layer path, preserving bit-identity.
    pub(crate) fn rssi_read(&self, n: NodeId, actual: Dbm) -> Dbm {
        if self.nodes[n].drift.is_some() {
            self.sc
                .radio
                .rssi
                .read(actual + self.drift_offset(n, self.now))
        } else {
            self.sc.radio.rssi.read(actual)
        }
    }

    /// The node crashes: any reception is lost, any frame on the air is
    /// abandoned to its fate, and everything the node had scheduled
    /// becomes stale.
    pub(crate) fn on_node_down(&mut self, n: NodeId) {
        let watermark = self.queue.next_seq();
        let node = &mut self.nodes[n];
        if node.down {
            return; // overlapping crash windows: already dead
        }
        node.down = true;
        node.rx = None;
        node.awaiting_ack = None;
        // `transmitting` is left as-is: the in-flight frame's TxEnd
        // still fires (always processed) and clears it.
        node.stale_before_seq = watermark;
        self.obs.trace_kind(
            self.now,
            TraceKind::Fault {
                node: n,
                fault: "down",
            },
        );
    }

    /// The node reboots factory-fresh and re-enters the world exactly
    /// as bootstrap admitted it — minus the start jitter (reboots
    /// consume no randomness; the schedule stays seed-independent).
    pub(crate) fn on_node_up(&mut self, n: NodeId) {
        let now = self.now;
        {
            let node = &mut self.nodes[n];
            if !node.down {
                return; // reboot without a preceding crash: no-op
            }
            node.down = false;
            node.transmitting = false;
            node.rx = None;
            node.awaiting_ack = None;
            node.credits = 0;
            node.wants_packet = false;
            node.forced_next = false;
            node.next_interval_at = now;
            // A fresh `last_tx` keeps a pre-crash frame's TxEnd from
            // being mistaken for ours (tx ids start at 1).
            node.last_tx = 0;
            if let Some(mac) = node.mac.as_mut() {
                // Factory-fresh MAC: backoff exponent, retry counters,
                // and pending-frame state all reset.
                *mac = MacEngine::new(*mac.params());
            }
        }
        // Threshold state resets through provider_mutate so attached
        // observers see the jump back to the conservative default.
        self.provider_mutate(n, |p, t| p.reinitialize(t));
        self.obs.trace_kind(
            now,
            TraceKind::Fault {
                node: n,
                fault: "up",
            },
        );
        // Re-bootstrap the node's event chains (senders only; receivers
        // are purely reactive).
        if !self.nodes[n].is_sender || now >= SimTime::ZERO + self.sc.duration {
            return;
        }
        if matches!(
            self.nodes[n].traffic,
            crate::scenario::TrafficModel::Forward { .. }
        ) {
            self.nodes[n].wants_packet = true;
        } else {
            self.queue.schedule(now, Event::PacketReady(n));
        }
        self.queue.schedule(now, Event::ProviderTick(n));
        if self.provider_wants_sensing(n, now) {
            self.queue.schedule(now, Event::PowerSense(n));
        }
    }

    /// The CCA comparator latches busy: every assessment until the
    /// window closes reports a busy channel regardless of the medium.
    pub(crate) fn on_cca_stuck_start(&mut self, n: NodeId) {
        self.nodes[n].cca_stuck = true;
        self.obs.trace_kind(
            self.now,
            TraceKind::Fault {
                node: n,
                fault: "cca_stuck",
            },
        );
    }

    /// The latched comparator releases.
    pub(crate) fn on_cca_stuck_end(&mut self, n: NodeId) {
        self.nodes[n].cca_stuck = false;
        self.obs.trace_kind(
            self.now,
            TraceKind::Fault {
                node: n,
                fault: "cca_released",
            },
        );
    }
}
