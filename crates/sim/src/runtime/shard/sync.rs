//! Conservative time-windowed shard execution.
//!
//! # Protocol
//!
//! Shards are distributed round-robin over `min(threads, shards)`
//! workers (worker *w* owns ranks `w, w + workers, …`). All workers
//! advance their owned engines in lockstep global windows
//! `[i·H, (i+1)·H)` where `H` is the lookahead horizon: each window,
//! a worker steps its owned shards in ascending rank through
//! [`Engine::run_window`], the attached [`RelayObserver`] streaming
//! every consumed note to the merger as it happens, then sends one
//! [`ShardMsg::Barrier`] per shard (or the terminal [`ShardMsg::Done`]
//! when the shard's run ended inside the window). Same-thread sends on
//! clones of one channel preserve program order, so a shard's window-*i*
//! notes always precede its window-*i* barrier.
//!
//! # Lookahead horizon
//!
//! Shards in this partition scheme are *fully independent* — the
//! planner unions every pair that could exchange power, sync, or
//! frames — so no cross-shard event can invalidate another shard's
//! window and **any** positive horizon is conservative. The windows
//! exist to bound merger memory (one window of notes at a time) while
//! keeping per-window overhead amortized: `H` is the scenario's
//! minimum RX→TX turnaround (the shortest delay between deciding to
//! transmit and the frame reaching the air — the classical lookahead
//! bound a coupled-shard protocol would need) scaled by a constant
//! window amortization factor, floored at 1 ms.
//!
//! # Deadlock freedom
//!
//! Channels are bounded, so workers can block on a full channel and
//! the merger blocks on empty ones; freedom follows from matching scan
//! orders. The merger drains shards in ascending rank within each
//! window round, and a worker fills its owned shards in ascending rank
//! within the same window. Inductively, when the merger waits on shard
//! *s* at window *i*, every earlier-rank shard's window-*i* traffic has
//! already been drained — so *s*'s owner is either at *s* (producing
//! into a channel the merger is actively draining) or blocked on a
//! *later*-rank shard's full channel, which the merger reaches only
//! after *s*'s barrier, i.e. never before unblocking it. No cycle.
//!
//! [`RelayObserver`]: super::merge::RelayObserver
//! [`ShardMsg::Barrier`]: super::merge::ShardMsg::Barrier
//! [`ShardMsg::Done`]: super::merge::ShardMsg::Done

use super::merge::{self, RelayObserver, ShardMsg, ShipFlags};
use super::partition::ShardSpec;
use crate::metrics::SimResult;
use crate::runtime::observer::SimObserver;
use crate::runtime::Engine;
use crate::scenario::Scenario;
use nomc_units::{SimDuration, SimTime};
use std::sync::mpsc::{sync_channel, SyncSender};

/// Bounded per-shard channel depth: enough to keep a worker streaming
/// while the merger drains a sibling, small enough to cap peak memory.
const CHANNEL_CAP: usize = 256;

/// Window length as a multiple of the lookahead quantum (the minimum
/// RX→TX turnaround), amortizing per-window barrier traffic.
const WINDOW_QUANTA: u64 = 64;

/// Floor on the window length: barrier overhead stays negligible even
/// for scenarios with unusually small MAC timings.
const MIN_WINDOW: SimDuration = SimDuration::from_millis(1);

/// The synchronization window length for a scenario.
pub(crate) fn sync_horizon(sc: &Scenario) -> SimDuration {
    let quantum = sc
        .behaviors
        .iter()
        .map(|b| b.mac.turnaround)
        .min()
        .unwrap_or(MIN_WINDOW);
    let nanos = quantum.as_nanos().saturating_mul(WINDOW_QUANTA);
    SimDuration::from_nanos(nanos.max(MIN_WINDOW.as_nanos()))
}

/// Runs a multi-shard plan to completion: spawns the workers, merges
/// the note streams in canonical order, and returns the merged result
/// plus whether any shard exhausted its share of the event budget.
///
/// `max_events` is split across shards as evenly as possible (earlier
/// ranks take the remainder), so exhaustion points depend only on the
/// plan — never on thread count.
pub(crate) fn execute(
    sc: &Scenario,
    plan: &[ShardSpec],
    externals: &mut [&mut dyn SimObserver],
    max_events: u64,
    threads: usize,
) -> (SimResult, bool) {
    let shards = plan.len();
    let workers = threads.max(1).min(shards);
    let horizon_ns = sync_horizon(sc).as_nanos().max(1);
    let budgets = split_budget(max_events, shards);
    let ship = ShipFlags::for_run(sc, externals);

    // Worker-local copies with the heavyweight recorders off: the
    // merger rebuilds the trace and timeline from relayed notes.
    let subs: Vec<Scenario> = plan
        .iter()
        .map(|spec| {
            let mut sub = spec.scenario.clone();
            sub.record_trace = false;
            sub.record_timeline = false;
            sub
        })
        .collect();

    let mut senders = Vec::with_capacity(shards);
    let mut receivers = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel(CHANNEL_CAP);
        senders.push(tx);
        receivers.push(rx);
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let owned: Vec<(SyncSender<ShardMsg>, &Scenario, u64)> = (w..shards)
                .step_by(workers)
                .map(|rank| (senders[rank].clone(), &subs[rank], budgets[rank]))
                .collect();
            scope.spawn(move || run_worker(owned, horizon_ns, ship));
        }
        // Drop the original senders: if a worker dies, the merger's
        // `recv` disconnects (and panics with context) instead of
        // blocking forever.
        drop(senders);
        merge::merge(sc, plan, &receivers, externals)
    })
}

/// Splits an event budget over `shards` as evenly as possible; an
/// unlimited budget stays unlimited everywhere.
pub(crate) fn split_budget(max_events: u64, shards: usize) -> Vec<u64> {
    if max_events == u64::MAX {
        return vec![u64::MAX; shards];
    }
    let n = shards as u64;
    let per = max_events / n;
    let rem = max_events % n;
    (0..n).map(|rank| per + u64::from(rank < rem)).collect()
}

/// One worker: builds engines for its owned shards and advances them
/// through lockstep windows until all are done.
fn run_worker(
    owned: Vec<(SyncSender<ShardMsg>, &Scenario, u64)>,
    horizon_ns: u64,
    ship: ShipFlags,
) {
    let mut relays: Vec<RelayObserver> = owned
        .iter()
        .map(|(tx, _, _)| RelayObserver::new(tx.clone(), ship))
        .collect();
    let mut slots: Vec<&mut dyn SimObserver> = relays
        .iter_mut()
        .map(|r| r as &mut dyn SimObserver)
        .collect();
    let mut engines: Vec<Option<Engine<'_, '_, '_>>> = Vec::with_capacity(owned.len());
    let mut rest: &mut [&mut dyn SimObserver] = &mut slots;
    for (_, sub, budget) in &owned {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(1);
        rest = tail;
        let mut engine = Engine::new(sub, head);
        engine.max_events = *budget;
        engine.bootstrap();
        engines.push(Some(engine));
    }

    let mut live = engines.len();
    let mut window: u64 = 0;
    while live > 0 {
        let until = SimTime::ZERO
            + SimDuration::from_nanos(horizon_ns.saturating_mul(window.saturating_add(1)));
        for (i, slot) in engines.iter_mut().enumerate() {
            let more = match slot.as_mut() {
                Some(engine) => engine.run_window(until),
                None => continue,
            };
            let (tx, _, _) = &owned[i];
            if more {
                tx.send(ShardMsg::Barrier)
                    .expect("merger outlives the shard workers");
            } else {
                let engine = slot.take().expect("engine present while live");
                let exhausted = engine.exhausted;
                let result = engine.finalize();
                tx.send(ShardMsg::Done {
                    result: Box::new(result),
                    exhausted,
                })
                .expect("merger outlives the shard workers");
                live -= 1;
            }
        }
        window = window.saturating_add(1);
    }
}
