//! Interaction-component planning: which networks must share a shard.
//!
//! The planner runs union-find over the *can-interact* relation between
//! networks, built from the same [`crate::reach`] predicates the medium
//! uses for sensing (so partitioning and sensing can never disagree).
//! Two networks are unioned when **any** coupling path between them is
//! possible:
//!
//! 1. **Channel coupling** — their CFD is within the ACR curve's
//!    support ([`reach::channel_coupled`]), so power queries see leaked
//!    energy.
//! 2. **Sync capture** — the capture model admits cross-CFD preamble
//!    sync ([`CaptureModel::is_sync_candidate`]), so a receiver on one
//!    network could lock onto the other's frames.
//! 3. **Collision floor** — [`Medium::was_collided`] applies *no*
//!    channel cutoff; a pair is unioned unless the maximum possible
//!    coupled power (worst-case shadowing excursion included, see
//!    [`reach::above_collision_floor`]) stays at or below the
//!    scenario's collision floor in both transmit directions.
//! 4. **Forwarding** — a `Forward { from_link }` traffic source (via
//!    network behaviour or per-link override) moves frames between the
//!    two networks' queues.
//!
//! Geometry-free jammer faults couple to *everyone* within their
//! channel reach, so instead of widening the union they are replicated
//! into every shard's fault plan — each sub-medium then sees the exact
//! same ambient terms the global medium would.
//!
//! [`CaptureModel::is_sync_candidate`]: nomc_phy::capture::CaptureModel::is_sync_candidate
//! [`Medium::was_collided`]: crate::medium::Medium::was_collided

use crate::reach;
use crate::rng::splitmix64;
use crate::scenario::{FaultPlan, Scenario, TrafficModel};
use nomc_topology::Deployment;
use std::collections::BTreeMap;

/// One shard of a partitioned run: a closed set of networks plus a
/// standalone sub-scenario that reproduces exactly their slice of the
/// original scenario.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Global network indices in this shard, ascending.
    pub networks: Vec<usize>,
    /// Global link indices in this shard, ascending (network-major, so
    /// position `j` here is local link `j` of [`ShardSpec::scenario`]).
    pub links: Vec<usize>,
    /// Global node indices in this shard, ascending (sender `2·link`,
    /// receiver `2·link + 1`; position `j` is local node `j`).
    pub nodes: Vec<usize>,
    /// The standalone sub-scenario. For a single-component plan this is
    /// a verbatim copy of the input (same seed); otherwise the seed is
    /// derived per shard (see [`plan`]) and all other knobs are copied,
    /// with link/node references remapped to shard-local indices.
    pub scenario: Scenario,
}

/// Minimal union-find over network indices. Roots are always the
/// *minimum* member index, so component enumeration and seed derivation
/// depend only on the scenario, never on traversal order.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Partitions a (validated) scenario into its interaction components.
///
/// Components are returned sorted by their minimum global network
/// index; a fully-coupled scenario yields a single spec whose
/// `scenario` is a verbatim copy of the input. For multi-component
/// plans each shard's RNG stream is derived from the base seed and the
/// component's minimum network index —
/// `splitmix64(seed ^ splitmix64(min_net + 1))` — the same
/// keyed-derivation discipline the sweep layer uses, so results depend
/// only on the scenario, never on shard count or thread count.
pub fn plan(sc: &Scenario) -> Vec<ShardSpec> {
    let nets = &sc.deployment.networks;
    let n = nets.len();
    if n == 0 {
        return Vec::new();
    }

    // Global link index layout (network-major, matching the engine).
    let mut first_link = Vec::with_capacity(n);
    let mut link_net = Vec::new();
    for (ni, net) in nets.iter().enumerate() {
        first_link.push(link_net.len());
        for _ in &net.links {
            link_net.push(ni);
        }
    }

    let mut uf = UnionFind::new(n);
    let cutoff = sc.propagation.acr.saturation_cfd();
    for a in 0..n {
        for b in (a + 1)..n {
            if uf.find(a) == uf.find(b) {
                continue;
            }
            let cfd = nets[a].frequency.distance_to(nets[b].frequency);
            if reach::channel_coupled(cfd, cutoff) || sc.radio.capture_model.is_sync_candidate(cfd)
            {
                uf.union(a, b);
                continue;
            }
            // Collision-floor rule, both transmit directions over every
            // node pair (every node transmits at its link's power: the
            // receiver emits Imm-ACKs).
            let coupled = nets[a].links.iter().any(|la| {
                nets[b].links.iter().any(|lb| {
                    [la.tx, la.rx].iter().any(|pa| {
                        [lb.tx, lb.rx].iter().any(|pb| {
                            let loss = sc.propagation.path_loss.loss(pa.distance_to(*pb));
                            reach::above_collision_floor(
                                la.tx_power,
                                loss,
                                cfd,
                                &sc.propagation,
                                sc.collision_floor,
                            ) || reach::above_collision_floor(
                                lb.tx_power,
                                loss,
                                cfd,
                                &sc.propagation,
                                sc.collision_floor,
                            )
                        })
                    })
                })
            });
            if coupled {
                uf.union(a, b);
            }
        }
    }

    // Forwarding edges (behaviour defaults and per-link overrides).
    for (ni, behavior) in sc.behaviors.iter().enumerate() {
        if let TrafficModel::Forward { from_link } = behavior.traffic {
            if let Some(&src) = link_net.get(from_link) {
                uf.union(ni, src);
            }
        }
    }
    for &(link, model) in &sc.link_traffic {
        if let TrafficModel::Forward { from_link } = model {
            if let (Some(&dst), Some(&src)) = (link_net.get(link), link_net.get(from_link)) {
                uf.union(dst, src);
            }
        }
    }

    // Components, keyed (and therefore sorted) by minimum member index.
    let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for ni in 0..n {
        components.entry(uf.find(ni)).or_default().push(ni);
    }

    if components.len() == 1 {
        return vec![ShardSpec {
            networks: (0..n).collect(),
            links: (0..link_net.len()).collect(),
            nodes: (0..link_net.len() * 2).collect(),
            scenario: sc.clone(),
        }];
    }

    components
        .into_iter()
        .map(|(root, networks)| sub_spec(sc, root, networks, &first_link))
        .collect()
}

/// Builds one shard's spec: index maps plus the remapped sub-scenario.
fn sub_spec(sc: &Scenario, root: usize, networks: Vec<usize>, first_link: &[usize]) -> ShardSpec {
    let nets = &sc.deployment.networks;
    let mut links = Vec::new();
    let mut nodes = Vec::new();
    let mut link_local: BTreeMap<usize, usize> = BTreeMap::new();
    let mut node_local: BTreeMap<usize, usize> = BTreeMap::new();
    for &ni in &networks {
        for li in 0..nets[ni].links.len() {
            let g = first_link[ni] + li;
            link_local.insert(g, links.len());
            links.push(g);
            for node in [2 * g, 2 * g + 1] {
                node_local.insert(node, nodes.len());
                nodes.push(node);
            }
        }
    }

    let map_link = |g: usize| -> usize {
        link_local
            .get(&g)
            .copied()
            .expect("forward source link is unioned into the same shard")
    };

    let behaviors = networks
        .iter()
        .map(|&ni| {
            let mut b = sc.behaviors[ni].clone();
            if let TrafficModel::Forward { from_link } = b.traffic {
                b.traffic = TrafficModel::Forward {
                    from_link: map_link(from_link),
                };
            }
            b
        })
        .collect();

    let link_traffic = sc
        .link_traffic
        .iter()
        .filter_map(|&(link, model)| {
            let local = link_local.get(&link).copied()?;
            let model = match model {
                TrafficModel::Forward { from_link } => TrafficModel::Forward {
                    from_link: map_link(from_link),
                },
                other => other,
            };
            Some((local, model))
        })
        .collect();

    let faults = FaultPlan {
        crashes: sc
            .faults
            .crashes
            .iter()
            .filter_map(|c| {
                node_local.get(&c.node).map(|&node| {
                    let mut c = *c;
                    c.node = node;
                    c
                })
            })
            .collect(),
        // Jammers are geometry-free and draw no RNG: replicating them
        // into every shard reproduces the global medium's ambient terms
        // exactly.
        jammers: sc.faults.jammers.clone(),
        drifts: sc
            .faults
            .drifts
            .iter()
            .filter_map(|d| {
                node_local.get(&d.node).map(|&node| {
                    let mut d = *d;
                    d.node = node;
                    d
                })
            })
            .collect(),
        stuck_cca: sc
            .faults
            .stuck_cca
            .iter()
            .filter_map(|s| {
                node_local.get(&s.node).map(|&node| {
                    let mut s = *s;
                    s.node = node;
                    s
                })
            })
            .collect(),
    };

    let scenario = Scenario {
        deployment: Deployment::new(networks.iter().map(|&ni| nets[ni].clone()).collect()),
        propagation: sc.propagation.clone(),
        radio: sc.radio.clone(),
        frame: sc.frame,
        behaviors,
        link_traffic,
        faults,
        duration: sc.duration,
        warmup: sc.warmup,
        seed: shard_seed(sc.seed, root),
        record_error_positions: sc.record_error_positions,
        record_timeline: sc.record_timeline,
        record_trace: sc.record_trace,
        record_error_records: sc.record_error_records,
        collision_floor: sc.collision_floor,
    };

    ShardSpec {
        networks,
        links,
        nodes,
        scenario,
    }
}

/// Per-shard RNG stream: keyed on the component's minimum global
/// network index, independent of shard enumeration and thread count.
fn shard_seed(base: u64, min_net: usize) -> u64 {
    splitmix64(base ^ splitmix64(min_net as u64 + 1))
}
