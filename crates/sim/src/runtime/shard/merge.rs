//! Boundary-event relay and the canonical merge.
//!
//! Each shard worker attaches a [`RelayObserver`] to its engine; every
//! observer notification the run cares about is forwarded *immediately*
//! (no batching — the worker can never touch the observer while the
//! engine borrows it) through a bounded channel as a [`Note`], followed
//! by one [`ShardMsg::Barrier`] per synchronization window and a final
//! [`ShardMsg::Done`] carrying the shard's [`SimResult`].
//!
//! The merger drains every live shard's channel one window at a time
//! (shards in ascending rank), sorts the collected notes by the
//! canonical `(time, shard rank, per-shard emission seq)` key, remaps
//! shard-local node/link/network/transmission ids to global ones, and
//! replays the notes into the run's external observers in that single
//! serial order — so observers cannot tell they watched a sharded run,
//! beyond transmission ids being minted in merged order. Within one
//! shard the canonical key preserves emission order exactly (times are
//! non-decreasing and `seq` breaks ties), and notes from window *w* all
//! precede notes from window *w + 1* in time, so sorting window-by-
//! window is globally correct with bounded memory.
//!
//! Per-category ship flags ([`ShipFlags`]) keep the relay quiet when
//! nobody consumes a category: a bare `run_sharded` with no observers
//! and no trace/timeline recording ships no notes at all.

use super::partition::ShardSpec;
use crate::events::{Event, TxId};
use crate::metrics::{LinkMetrics, SimResult, TimelineRecord};
use crate::runtime::observer::{
    PowerSample, SimObserver, ThresholdSample, TxOutcomeInfo, TxStartInfo,
};
use crate::scenario::Scenario;
use crate::trace::{TraceKind, TraceRecord};
use nomc_units::SimTime;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender, SyncSender};

/// Which note categories a run actually consumes, sampled once before
/// the workers start. Categories nobody consumes are never shipped.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShipFlags {
    /// Raw queue events (externals attached).
    pub(crate) events: bool,
    /// Structured trace records (`record_trace` or an external wants
    /// traces).
    pub(crate) trace: bool,
    /// TxStart/TxOutcome/Abandon (externals attached or
    /// `record_timeline`).
    pub(crate) tx: bool,
    /// Threshold changes (an external wants thresholds).
    pub(crate) thresholds: bool,
    /// RSSI power samples (externals attached).
    pub(crate) power: bool,
}

impl ShipFlags {
    pub(crate) fn for_run(sc: &Scenario, externals: &[&mut dyn SimObserver]) -> Self {
        let any = !externals.is_empty();
        ShipFlags {
            events: any,
            trace: sc.record_trace || externals.iter().any(|o| o.wants_trace()),
            tx: any || sc.record_timeline,
            thresholds: externals.iter().any(|o| o.wants_thresholds()),
            power: any,
        }
    }
}

/// One relayed observer notification, shard-local ids throughout.
///
/// The name deliberately ends in `Event`: nomc-lint's
/// exhaustive-dispatch rule watches `…Event::` matches in this file, so
/// the merge's dispatch over boundary events must stay wildcard-free —
/// adding a category is a compile *and* lint error at the merge site.
#[derive(Debug)]
pub(crate) enum BoundaryEvent {
    /// A raw queue event was popped (pre-dispatch).
    Popped(Event),
    /// A structured trace record was produced.
    Trace(TraceRecord),
    /// A data frame went on air.
    TxStart(TxStartInfo),
    /// A data frame completed at its receiver.
    TxOutcome(Box<TxOutcomeInfo>),
    /// A sender abandoned a frame.
    Abandon {
        /// Shard-local link index.
        link: usize,
        /// Whether the abandonment fell in the measured window.
        measured: bool,
    },
    /// A node's effective CCA threshold changed.
    Threshold(ThresholdSample),
    /// A node took an RSSI power-sensing sample.
    Power(PowerSample),
}

/// A [`BoundaryEvent`] stamped with its emission time and the shard's
/// running emission counter — the last two fields of the canonical
/// `(time, rank, seq)` merge key.
#[derive(Debug)]
pub(crate) struct Note {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) ev: BoundaryEvent,
}

/// Everything a shard worker sends its merger.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// One relayed observer notification.
    Note(Box<Note>),
    /// The shard finished one synchronization window (all its notes for
    /// that window precede this marker in channel order).
    Barrier,
    /// The shard's run is over; terminal message. Counts as the barrier
    /// for this and every later window.
    Done {
        result: Box<SimResult>,
        exhausted: bool,
    },
}

/// Where a [`RelayObserver`] delivers its messages: the threaded
/// executor's bounded channel (backpressure against the merger), or an
/// unbounded one for the single-threaded checkpoint executor, where the
/// consumer drains only after the producing leg finishes — a bounded
/// channel would deadlock there.
pub(crate) enum NoteSink {
    /// Threaded lockstep execution (`shard::execute`).
    Bounded(SyncSender<ShardMsg>),
    /// Buffered single-threaded execution (checkpointed legs).
    Unbounded(Sender<ShardMsg>),
}

impl NoteSink {
    fn send(&self, msg: ShardMsg) {
        match self {
            NoteSink::Bounded(tx) => tx.send(msg).expect("merger outlives the shard workers"),
            NoteSink::Unbounded(tx) => tx.send(msg).expect("receiver outlives the leg"),
        }
    }
}

/// The per-shard observer: forwards each notification to the merger the
/// moment it happens. Owns no shared state (plain channel sender), so
/// it satisfies the observer-purity rule by construction.
pub(crate) struct RelayObserver {
    tx: NoteSink,
    ship: ShipFlags,
    seq: u64,
    /// Engine time of the last popped event — `on_abandon` carries no
    /// timestamp of its own, and `on_event` always precedes it.
    now: SimTime,
}

impl RelayObserver {
    pub(crate) fn new(tx: SyncSender<ShardMsg>, ship: ShipFlags) -> Self {
        RelayObserver::resumed(NoteSink::Bounded(tx), ship, 0, SimTime::ZERO)
    }

    /// A relay resuming an interrupted note stream: `seq` and `now`
    /// continue from the values [`RelayObserver::seq`] /
    /// [`RelayObserver::now`] reported when the stream paused, so the
    /// canonical `(time, rank, seq)` merge key ordering spans legs.
    pub(crate) fn resumed(tx: NoteSink, ship: ShipFlags, seq: u64, now: SimTime) -> Self {
        RelayObserver { tx, ship, seq, now }
    }

    /// Notes emitted so far (the next note's merge-key `seq`).
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// Engine time of the last relayed popped event.
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, at: SimTime, ev: BoundaryEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.tx.send(ShardMsg::Note(Box::new(Note { at, seq, ev })));
    }
}

impl SimObserver for RelayObserver {
    fn wants_trace(&self) -> bool {
        self.ship.trace
    }

    fn wants_thresholds(&self) -> bool {
        self.ship.thresholds
    }

    fn on_event(&mut self, now: SimTime, event: &Event) {
        self.now = now;
        if self.ship.events {
            self.send(now, BoundaryEvent::Popped(*event));
        }
    }

    fn on_trace(&mut self, record: &TraceRecord) {
        if self.ship.trace {
            self.send(record.at, BoundaryEvent::Trace(record.clone()));
        }
    }

    fn on_tx_start(&mut self, info: &TxStartInfo) {
        if self.ship.tx {
            self.send(info.at, BoundaryEvent::TxStart(info.clone()));
        }
    }

    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        if self.ship.tx {
            self.send(info.end, BoundaryEvent::TxOutcome(Box::new(info.clone())));
        }
    }

    fn on_abandon(&mut self, link: usize, measured: bool) {
        if self.ship.tx {
            let at = self.now;
            self.send(at, BoundaryEvent::Abandon { link, measured });
        }
    }

    fn on_threshold_change(&mut self, sample: &ThresholdSample) {
        if self.ship.thresholds {
            self.send(sample.at, BoundaryEvent::Threshold(*sample));
        }
    }

    fn on_power_sample(&mut self, sample: &PowerSample) {
        if self.ship.power {
            self.send(sample.at, BoundaryEvent::Power(*sample));
        }
    }
}

/// Shard-local → global id translation. Node, link and network indices
/// translate through the shard's [`ShardSpec`] maps; transmission ids
/// are minted fresh (from 1, like the engine) on first sight in
/// canonical merge order, which depends only on the note stream — never
/// on thread scheduling.
struct Remapper {
    tx_maps: Vec<BTreeMap<TxId, TxId>>,
    next_tx: TxId,
}

impl Remapper {
    fn new(shards: usize) -> Self {
        Remapper {
            tx_maps: (0..shards).map(|_| BTreeMap::new()).collect(),
            next_tx: 1,
        }
    }

    fn tx(&mut self, rank: usize, local: TxId) -> TxId {
        let map = &mut self.tx_maps[rank];
        if let Some(&global) = map.get(&local) {
            return global;
        }
        let global = self.next_tx;
        self.next_tx += 1;
        map.insert(local, global);
        global
    }

    /// Translates every id a queue event can carry. Exhaustive by
    /// design: a new `Event` variant must decide its remapping here.
    fn event(&mut self, rank: usize, spec: &ShardSpec, ev: Event) -> Event {
        match ev {
            Event::PacketReady(n) => Event::PacketReady(spec.nodes[n]),
            Event::BackoffExpired(n) => Event::BackoffExpired(spec.nodes[n]),
            Event::CcaDone(n) => Event::CcaDone(spec.nodes[n]),
            Event::TxStart(n) => Event::TxStart(spec.nodes[n]),
            Event::TxEnd(n, id) => Event::TxEnd(spec.nodes[n], self.tx(rank, id)),
            Event::SyncDone(n, id) => Event::SyncDone(spec.nodes[n], self.tx(rank, id)),
            Event::PowerSense(n) => Event::PowerSense(spec.nodes[n]),
            Event::ProviderTick(n) => Event::ProviderTick(spec.nodes[n]),
            Event::AckStart(n, id) => Event::AckStart(spec.nodes[n], self.tx(rank, id)),
            Event::AckTimeout(n, id) => Event::AckTimeout(spec.nodes[n], self.tx(rank, id)),
            Event::NodeDown(n) => Event::NodeDown(spec.nodes[n]),
            Event::NodeUp(n) => Event::NodeUp(spec.nodes[n]),
            Event::CcaStuckStart(n) => Event::CcaStuckStart(spec.nodes[n]),
            Event::CcaStuckEnd(n) => Event::CcaStuckEnd(spec.nodes[n]),
        }
    }

    fn trace_kind(&mut self, rank: usize, spec: &ShardSpec, kind: TraceKind) -> TraceKind {
        match kind {
            TraceKind::Cca {
                node,
                sensed_dbm,
                threshold_dbm,
                clear,
            } => TraceKind::Cca {
                node: spec.nodes[node],
                sensed_dbm,
                threshold_dbm,
                clear,
            },
            TraceKind::TxStart {
                node,
                tx,
                seq,
                forced,
            } => TraceKind::TxStart {
                node: spec.nodes[node],
                tx: self.tx(rank, tx),
                seq,
                forced,
            },
            TraceKind::Outcome {
                tx,
                receiver,
                outcome,
            } => TraceKind::Outcome {
                tx: self.tx(rank, tx),
                receiver: spec.nodes[receiver],
                outcome,
            },
            TraceKind::AckDelivered { tx, sender } => TraceKind::AckDelivered {
                tx: self.tx(rank, tx),
                sender: spec.nodes[sender],
            },
            TraceKind::AckTimedOut { tx, sender } => TraceKind::AckTimedOut {
                tx: self.tx(rank, tx),
                sender: spec.nodes[sender],
            },
            TraceKind::Fault { node, fault } => TraceKind::Fault {
                node: spec.nodes[node],
                fault,
            },
        }
    }
}

/// Per-shard merger bookkeeping.
#[derive(Default)]
struct ShardState {
    finished: bool,
    exhausted: bool,
    result: Option<Box<SimResult>>,
}

/// Drains every shard channel window-by-window, replays the canonical
/// note order into `externals`, and assembles the merged [`SimResult`].
/// Returns the result plus whether any shard exhausted its event
/// budget.
pub(crate) fn merge(
    sc: &Scenario,
    plan: &[ShardSpec],
    receivers: &[Receiver<ShardMsg>],
    externals: &mut [&mut dyn SimObserver],
) -> (SimResult, bool) {
    let shards = plan.len();
    let mut states: Vec<ShardState> = (0..shards).map(|_| ShardState::default()).collect();
    let mut merger = Merger {
        sc,
        remap: Remapper::new(shards),
        trace: Vec::new(),
        timeline: Vec::new(),
    };
    let mut window: Vec<(SimTime, usize, u64, BoundaryEvent)> = Vec::new();
    let mut done = 0usize;
    while done < shards {
        window.clear();
        for (rank, rx) in receivers.iter().enumerate() {
            if states[rank].finished {
                continue;
            }
            loop {
                match rx.recv().expect("shard worker lives until Done") {
                    ShardMsg::Note(note) => {
                        let note = *note;
                        window.push((note.at, rank, note.seq, note.ev));
                    }
                    ShardMsg::Barrier => break,
                    ShardMsg::Done { result, exhausted } => {
                        states[rank].finished = true;
                        states[rank].exhausted = exhausted;
                        states[rank].result = Some(result);
                        done += 1;
                        break;
                    }
                }
            }
        }
        window.sort_unstable_by_key(|a| (a.0, a.1, a.2));
        for (at, rank, _seq, ev) in window.drain(..) {
            merger.replay(at, &plan[rank], rank, ev, externals);
        }
    }
    merger.assemble(plan, states, externals)
}

/// Merges fully-buffered per-rank note logs — the checkpoint executor's
/// counterpart of [`merge`], which drains live channels window by
/// window.
///
/// Correctness of the single global sort: the canonical order is
/// `(time, rank, seq)` applied window-by-window, and windows partition
/// time (window *w* holds exactly the events in `[w·H, (w+1)·H)`), so
/// concatenating per-window sorts equals one global sort of everything.
/// The replay and the final assembly are the *same code* the threaded
/// merge runs, so the merged result, trace, timeline, and external
/// observer call sequence are byte-identical.
pub(crate) fn merge_logs(
    sc: &Scenario,
    plan: &[ShardSpec],
    logs: Vec<Vec<Note>>,
    results: Vec<(SimResult, bool)>,
    externals: &mut [&mut dyn SimObserver],
) -> (SimResult, bool) {
    let shards = plan.len();
    let mut merger = Merger {
        sc,
        remap: Remapper::new(shards),
        trace: Vec::new(),
        timeline: Vec::new(),
    };
    let mut all: Vec<(SimTime, usize, u64, BoundaryEvent)> = Vec::new();
    for (rank, log) in logs.into_iter().enumerate() {
        all.extend(log.into_iter().map(|n| (n.at, rank, n.seq, n.ev)));
    }
    all.sort_unstable_by_key(|a| (a.0, a.1, a.2));
    for (at, rank, _seq, ev) in all {
        merger.replay(at, &plan[rank], rank, ev, externals);
    }
    let states = results
        .into_iter()
        .map(|(result, exhausted)| ShardState {
            finished: true,
            exhausted,
            result: Some(Box::new(result)),
        })
        .collect();
    merger.assemble(plan, states, externals)
}

/// Canonical-order replay state: the id translator plus the merged
/// trace/timeline under construction.
struct Merger<'a> {
    sc: &'a Scenario,
    remap: Remapper,
    trace: Vec<TraceRecord>,
    timeline: Vec<TimelineRecord>,
}

impl Merger<'_> {
    /// Replays one canonical-order note into the external observers
    /// (and the merged trace/timeline), after id translation. Mirrors
    /// the serial `ObserverSet` fan-out exactly: traces and thresholds
    /// go to every external (category gating happened at emission), tx
    /// outcomes feed the timeline only when measured.
    fn replay(
        &mut self,
        at: SimTime,
        spec: &ShardSpec,
        rank: usize,
        ev: BoundaryEvent,
        externals: &mut [&mut dyn SimObserver],
    ) {
        match ev {
            BoundaryEvent::Popped(event) => {
                let event = self.remap.event(rank, spec, event);
                for o in externals.iter_mut() {
                    o.on_event(at, &event);
                }
            }
            BoundaryEvent::Trace(mut record) => {
                record.kind = self.remap.trace_kind(rank, spec, record.kind);
                if self.sc.record_trace {
                    self.trace.push(record.clone());
                }
                for o in externals.iter_mut() {
                    o.on_trace(&record);
                }
            }
            BoundaryEvent::TxStart(mut info) => {
                info.tx = self.remap.tx(rank, info.tx);
                info.node = spec.nodes[info.node];
                info.link = spec.links[info.link];
                for o in externals.iter_mut() {
                    o.on_tx_start(&info);
                }
            }
            BoundaryEvent::TxOutcome(info) => {
                let mut info = *info;
                info.tx = self.remap.tx(rank, info.tx);
                info.receiver = spec.nodes[info.receiver];
                info.link = spec.links[info.link];
                if self.sc.record_timeline && info.measured {
                    self.timeline.push(TimelineRecord {
                        link: info.link,
                        start: info.start,
                        end: info.end,
                        outcome: info.outcome,
                        collided: info.collided,
                    });
                }
                for o in externals.iter_mut() {
                    o.on_tx_outcome(&info);
                }
            }
            BoundaryEvent::Abandon { link, measured } => {
                let link = spec.links[link];
                for o in externals.iter_mut() {
                    o.on_abandon(link, measured);
                }
            }
            BoundaryEvent::Threshold(mut sample) => {
                sample.node = spec.nodes[sample.node];
                sample.link = spec.links[sample.link];
                for o in externals.iter_mut() {
                    o.on_threshold_change(&sample);
                }
            }
            BoundaryEvent::Power(mut sample) => {
                sample.node = spec.nodes[sample.node];
                sample.link = spec.links[sample.link];
                for o in externals.iter_mut() {
                    o.on_power_sample(&sample);
                }
            }
        }
    }

    /// Scatters per-shard results into one global [`SimResult`]
    /// (shard-local link/network positions → global deployment
    /// positions) and fires the externals' `on_run_end` once.
    fn assemble(
        self,
        plan: &[ShardSpec],
        states: Vec<ShardState>,
        externals: &mut [&mut dyn SimObserver],
    ) -> (SimResult, bool) {
        let sc = self.sc;
        let total_links = sc.deployment.link_count();
        let mut links = vec![LinkMetrics::default(); total_links];
        let mut mac_stats = vec![nomc_mac::MacStats::default(); total_links];
        let mut tx_powers = vec![nomc_units::Dbm::new(0.0); total_links];
        let mut final_thresholds = vec![nomc_units::Dbm::new(0.0); total_links];
        let mut events = 0u64;
        let mut exhausted = false;
        for (spec, state) in plan.iter().zip(states) {
            exhausted |= state.exhausted;
            let result = state.result.expect("every shard sent Done");
            events += result.events;
            for (local, &global) in spec.links.iter().enumerate() {
                let mut lm = result.links[local].clone();
                lm.network = spec.networks[lm.network];
                links[global] = lm;
                mac_stats[global] = result.mac_stats[local];
                tx_powers[global] = result.tx_powers[local];
                final_thresholds[global] = result.final_thresholds[local];
            }
        }
        let result = SimResult {
            measured: sc.duration - sc.warmup,
            links,
            network_frequencies: sc.deployment.networks.iter().map(|n| n.frequency).collect(),
            mac_stats,
            tx_powers,
            final_thresholds,
            timeline: self.timeline,
            trace: self.trace,
            events,
        };
        for o in externals.iter_mut() {
            o.on_run_end(&result);
        }
        (result, exhausted)
    }
}
