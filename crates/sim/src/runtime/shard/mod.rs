//! Deterministic sharded execution of a single simulation run.
//!
//! A scenario's networks fall into *interaction components* — the
//! equivalence classes of the "can possibly interact" relation built
//! from the same [`crate::reach`] predicates the medium's sensing
//! paths use (channel coupling within the ACR support, capture-model
//! sync candidacy, the collision-floor bound for the cutoff-free
//! `was_collided` query, and forwarding traffic). Networks in
//! different components can never exchange power, preamble sync, or
//! frames, so each component simulates as a standalone sub-scenario
//! with its own derived RNG stream, and the sub-results compose
//! exactly.
//!
//! The module family:
//!
//! * [`partition`] — union-find planning and [`ShardSpec`] / sub-
//!   scenario construction,
//! * `sync` — lockstep time-windowed workers over
//!   `Engine::run_window`, round-robin shard ownership, bounded
//!   channels,
//! * `merge` — the boundary-event relay observer and the canonical
//!   `(time, shard rank, seq)` merge that replays one serial-looking
//!   callback stream into external observers.
//!
//! # Determinism contract
//!
//! Results of [`crate::engine::run_sharded`] depend only on the
//! scenario — never on the thread count (`--shards N` sizes the worker
//! pool; the partition is canonical) and never on scheduling. A
//! single-component plan delegates to the serial engine with the seed
//! untouched, byte-identical to [`crate::engine::run`]. Multi-component
//! plans run each component exactly as the serial engine would run that
//! component's sub-scenario (same windows or not — windowing never
//! reorders a single engine's events), with per-shard seeds derived by
//! the sweep layer's keyed-`splitmix64` discipline, and merge the
//! observer streams in canonical order.

pub(crate) mod merge;
pub mod partition;
pub(crate) mod sync;

pub use partition::{plan, ShardSpec};
pub(crate) use sync::execute;
