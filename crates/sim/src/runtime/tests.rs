//! End-to-end engine behavior tests (moved verbatim from the
//! pre-decomposition `engine.rs` monolith — they exercise the public
//! [`crate::engine::run`] API and must keep passing unchanged).

use crate::engine::run;
use crate::scenario::{NetworkBehavior, Scenario, ThresholdMode, TrafficModel};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz, SimDuration};

fn single_network_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1))
        .seed(seed);
    b.build().expect("builder-validated test scenario")
}

#[test]
fn single_network_saturates_plausibly() {
    let result = run(&single_network_scenario(1));
    let tput = result.total_throughput();
    // Two saturated 2 m links on a clean channel: the paper's
    // networks sit in the 230-300 pkt/s range.
    assert!(
        (180.0..320.0).contains(&tput),
        "implausible saturated throughput {tput}"
    );
    // Intra-network CSMA collisions (turnaround window + forced
    // transmissions) cost some frames, but most must get through.
    let prr = result
        .total_prr()
        .expect("saturated links sent frames in the measured window");
    assert!(prr > 0.75, "PRR {prr}");
}

#[test]
fn identical_seeds_reproduce_exactly() {
    let a = run(&single_network_scenario(7));
    let b = run(&single_network_scenario(7));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run(&single_network_scenario(7));
    let b = run(&single_network_scenario(8));
    assert_ne!(a, b);
}

/// A radio whose CCA-threshold register is not range-limited, so
/// tests can pin the threshold below the noise floor.
fn unclamped_radio() -> nomc_radio::RadioConfig {
    let mut r = nomc_radio::RadioConfig::cc2420();
    r.cca_threshold_range = (Dbm::new(-150.0), Dbm::new(0.0));
    r.rssi = nomc_radio::rssi::RssiRegister::ideal();
    r
}

#[test]
fn blocked_channel_with_drop_policy_sends_nothing() {
    // Threshold below the noise floor reading + DropPacket ⇒ every CCA
    // busy ⇒ all frames dropped.
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    let mut behavior = NetworkBehavior::zigbee_default();
    behavior.threshold = ThresholdMode::Fixed(Dbm::new(-150.0));
    behavior.mac.on_failure = nomc_mac::CcaFailurePolicy::DropPacket;
    b.behavior_all(behavior)
        .radio(unclamped_radio())
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_secs(1));
    let result = run(&b.build().expect("builder-validated test scenario"));
    assert_eq!(result.total_throughput(), 0.0);
    let failures: u64 = result.mac_stats.iter().map(|s| s.access_failures).sum();
    assert!(failures > 0, "drops should be recorded");
}

#[test]
fn transmit_anyway_keeps_a_floor_rate() {
    // Same blocked channel, but the default transmit-anyway policy
    // forces frames out at the backoff-exhaustion rate (~40-60/s per
    // link) — the paper's Fig. 6 left plateau.
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    let mut behavior = NetworkBehavior::zigbee_default();
    behavior.threshold = ThresholdMode::Fixed(Dbm::new(-150.0));
    b.behavior_all(behavior)
        .radio(unclamped_radio())
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1));
    let result = run(&b.build().expect("builder-validated test scenario"));
    let sent_rate: f64 = result
        .links
        .iter()
        .map(|l| l.send_rate(result.measured))
        .sum();
    assert!(
        (40.0..160.0).contains(&sent_rate),
        "forced floor rate {sent_rate}"
    );
    let forced: u64 = result.links.iter().map(|l| l.forced_sent).sum();
    let sent: u64 = result.links.iter().map(|l| l.sent).sum();
    assert_eq!(forced, sent, "every frame was forced");
}

#[test]
fn orthogonal_networks_do_not_interact() {
    // Two networks 9 MHz apart and 4.5 m apart: throughput should be
    // ≈ 2× a single network's.
    let single = run(&single_network_scenario(3)).total_throughput();
    let plan = ChannelPlan::with_count(Megahertz::new(2455.0), Megahertz::new(9.0), 2);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1))
        .seed(3);
    let double = run(&b.build().expect("builder-validated test scenario")).total_throughput();
    let ratio = double / single;
    assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
}

#[test]
fn attacker_interval_pacing() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(3.0), 1);
    let mut deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    deployment.networks[0].links.truncate(1);
    let mut b = Scenario::builder(deployment);
    b.behavior_all(NetworkBehavior::attacker(SimDuration::from_millis(5)))
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1));
    let result = run(&b.build().expect("builder-validated test scenario"));
    let rate = result.links[0].send_rate(result.measured);
    assert!((195.0..205.0).contains(&rate), "interval rate {rate}");
    // Carrier sense disabled: no CCA at all.
    assert_eq!(
        result.mac_stats[0].cca_busy + result.mac_stats[0].cca_clear,
        0
    );
}

#[test]
fn dcn_network_initializes_and_relaxes() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(8))
        .warmup(SimDuration::from_secs(4));
    let result = run(&b.build().expect("builder-validated test scenario"));
    // On a clean channel DCN should settle near the co-channel peer
    // RSSI (2-2.8 m at 0 dBm ⇒ ≈ −50 ± shadowing), way above −77.
    for &t in &result.final_thresholds {
        assert!(t > Dbm::new(-70.0), "DCN threshold failed to relax: {t}");
    }
    // And throughput must not collapse relative to the fixed design.
    assert!(result.total_throughput() > 150.0);
}

#[test]
fn acknowledged_clean_link_delivers_everything() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    deployment.networks[0].links.truncate(1);
    let mut b = Scenario::builder(deployment);
    let mut behavior = NetworkBehavior::zigbee_default();
    behavior.mac = nomc_mac::CsmaParams::acknowledged_default();
    b.behavior_all(behavior)
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1));
    let result = run(&b.build().expect("builder-validated test scenario"));
    let link = &result.links[0];
    // Clean channel: essentially no retransmissions, no duplicates,
    // nothing abandoned, and throughput close to the unacked link's
    // minus the ACK overhead.
    assert!(link.received > 100, "received {}", link.received);
    assert_eq!(link.abandoned, 0);
    assert!(
        link.retransmissions < link.received / 20,
        "retransmissions {}",
        link.retransmissions
    );
    assert!(link.duplicates <= link.retransmissions);
}

#[test]
fn acknowledged_link_retransmits_under_interference() {
    // A −12 dBm link against a 0 dBm adjacent-channel attacker: CRC
    // failures force retransmissions, and retransmissions recover
    // deliveries that the unacknowledged link loses.
    let build = |acked: bool, seed: u64| {
        let (mut deployment, n, a) = {
            let (d, n, a) =
                paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(2.0), Dbm::new(0.0));
            (d, n, a)
        };
        deployment.networks[n].links[0].tx_power = Dbm::new(-12.0);
        let mut b = Scenario::builder(deployment);
        let mut normal = NetworkBehavior::zigbee_default();
        if acked {
            normal.mac = nomc_mac::CsmaParams::acknowledged_default();
        }
        b.behavior(n, normal)
            .behavior(a, NetworkBehavior::attacker(SimDuration::from_micros(2200)))
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .seed(seed);
        run(&b.build().expect("builder-validated test scenario"))
    };
    let acked = build(true, 3);
    let plain = build(false, 3);
    let acked_link = &acked.links[0];
    let plain_link = &plain.links[0];
    assert!(
        acked_link.retransmissions > 0,
        "interference should force retries"
    );
    // Unique-delivery rate of the acked link should beat the plain
    // link's PRR (retries mask losses).
    let acked_ratio = acked_link.received as f64 / acked.mac_stats[0].enqueued.max(1) as f64;
    let plain_prr = plain_link.prr().unwrap_or(0.0);
    assert!(
        acked_ratio > plain_prr,
        "acked delivery ratio {acked_ratio} vs plain PRR {plain_prr}"
    );
}

#[test]
fn forwarding_chain_relays_deliveries() {
    // Two-hop chain: link 0 (saturated source) delivers to a relay
    // position; link 1 forwards each delivery onward on another
    // channel.
    use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
    let hop0 = NetworkSpec::new(
        Megahertz::new(2458.0),
        vec![LinkSpec::new(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Dbm::new(0.0),
        )],
    );
    let hop1 = NetworkSpec::new(
        Megahertz::new(2461.0), // 3 MHz away: non-orthogonal
        vec![LinkSpec::new(
            Point::new(2.0, 0.1), // colocated with hop0's receiver
            Point::new(4.0, 0.0),
            Dbm::new(0.0),
        )],
    );
    let mut b = Scenario::builder(Deployment::new(vec![hop0, hop1]));
    b.link_traffic(1, TrafficModel::Forward { from_link: 0 })
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .seed(9);
    let result = run(&b.build().expect("builder-validated test scenario"));
    let source_delivered = result.links[0].received;
    let forwarded_sent = result.links[1].sent;
    let sink_delivered = result.links[1].received;
    assert!(source_delivered > 100, "source {source_delivered}");
    // The relay forwards (almost) one frame per delivery — boundary
    // effects allow a small mismatch.
    assert!(
        (forwarded_sent as f64) > 0.8 * source_delivered as f64
            && (forwarded_sent as f64) < 1.1 * source_delivered as f64,
        "source {source_delivered} vs forwarded {forwarded_sent}"
    );
    assert!(sink_delivered > 0);
    // With hops only 3 MHz apart, the relay's own transmissions leak
    // into its colocated receiver (ACR 20 dB at ~1 m), costing hop 0
    // some deliveries relative to a lone link — the non-orthogonal
    // relaying trade-off.
    let lone = {
        let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(5.0), 1);
        let mut d = paper::line_deployment(&plan, Dbm::new(0.0));
        d.networks[0].links.truncate(1);
        let mut b = Scenario::builder(d);
        b.duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .seed(9);
        run(&b.build().expect("builder-validated test scenario")).links[0].received
    };
    assert!(
        source_delivered < lone,
        "relay contention should cost something: {source_delivered} vs {lone}"
    );
}

#[test]
fn forwarder_without_credits_stays_silent() {
    use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
    // A forwarding link whose upstream never delivers (no source).
    let upstream = NetworkSpec::new(
        Megahertz::new(2458.0),
        vec![LinkSpec::new(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Dbm::new(0.0),
        )],
    );
    let downstream = NetworkSpec::new(
        Megahertz::new(2467.0),
        vec![LinkSpec::new(
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
            Dbm::new(0.0),
        )],
    );
    let mut b = Scenario::builder(Deployment::new(vec![upstream, downstream]));
    // Upstream paced absurdly slowly: ~0 deliveries in the window.
    b.behavior(
        0,
        NetworkBehavior {
            traffic: TrafficModel::Interval(SimDuration::from_secs(30)),
            ..NetworkBehavior::zigbee_default()
        },
    )
    .link_traffic(1, TrafficModel::Forward { from_link: 0 })
    .duration(SimDuration::from_secs(4))
    .warmup(SimDuration::from_secs(1))
    .seed(10);
    let result = run(&b.build().expect("builder-validated test scenario"));
    assert_eq!(result.links[1].sent, 0, "no credits, no transmissions");
}

#[test]
fn trace_recording() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_secs(1))
        .record_trace(true);
    let result = run(&b.build().expect("builder-validated test scenario"));
    assert!(!result.trace.is_empty());
    let has =
        |pred: fn(&crate::trace::TraceKind) -> bool| result.trace.iter().any(|r| pred(&r.kind));
    assert!(has(|k| matches!(k, crate::trace::TraceKind::Cca { .. })));
    assert!(has(|k| matches!(
        k,
        crate::trace::TraceKind::TxStart { .. }
    )));
    assert!(has(|k| matches!(
        k,
        crate::trace::TraceKind::Outcome { .. }
    )));
    // Chronological order.
    assert!(result.trace.windows(2).all(|w| w[0].at <= w[1].at));
    // And disabled by default.
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_secs(1));
    assert!(run(&b.build().expect("builder-validated test scenario"))
        .trace
        .is_empty());
}

#[test]
fn timeline_recording() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_secs(1))
        .record_timeline(true);
    let result = run(&b.build().expect("builder-validated test scenario"));
    assert!(!result.timeline.is_empty());
    for r in &result.timeline {
        assert!(r.end > r.start);
        assert!(r.link < 2);
    }
}
