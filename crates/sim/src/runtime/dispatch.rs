//! Bootstrap, the main event loop, and event routing.
//!
//! [`Engine::run`] drains the future-event list in `(time, seq)` order
//! until the post-run drain deadline; every popped event is offered to
//! the observers (before handling, so sinks see the pristine event) and
//! routed to its handler in the sibling modules.

use super::{Engine, DRAIN};
use crate::events::{Event, NodeId};
use crate::metrics::SimResult;
use crate::scenario::TrafficModel;
use nomc_mac::MacEvent;
use nomc_rngcore::Rng;
use nomc_units::{SimDuration, SimTime};

impl Engine<'_, '_, '_> {
    pub(crate) fn run(mut self) -> SimResult {
        self.bootstrap();
        let deadline = SimTime::ZERO + self.sc.duration + DRAIN;
        while let Some((t, ev)) = self.queue.pop() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.events += 1;
            self.obs.event(t, &ev);
            self.dispatch(ev);
        }
        self.finalize()
    }

    fn bootstrap(&mut self) {
        let sender_ids: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_sender)
            .collect();
        for id in sender_ids {
            // Small random start jitter desynchronizes the saturated
            // sources, like staggered mote boot times.
            let jitter = SimDuration::from_micros(self.rng.gen_range(0..5000));
            let start = SimTime::ZERO + jitter;
            self.nodes[id].next_interval_at = start;
            if matches!(self.nodes[id].traffic, TrafficModel::Forward { .. }) {
                // Forwarders wake when their first credit arrives.
                self.nodes[id].wants_packet = true;
            } else {
                self.queue.schedule(start, Event::PacketReady(id));
            }
            self.queue.schedule(start, Event::ProviderTick(id));
            if self.provider_wants_sensing(id, start) {
                self.queue.schedule(start, Event::PowerSense(id));
            }
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::PacketReady(n) => self.on_packet_ready(n),
            Event::BackoffExpired(n) => self.feed_mac(n, MacEvent::BackoffExpired),
            Event::CcaDone(n) => self.on_cca_done(n),
            Event::TxStart(n) => self.on_tx_start(n),
            Event::TxEnd(n, id) => self.on_tx_end(n, id),
            Event::SyncDone(n, id) => self.on_sync_done(n, id),
            Event::PowerSense(n) => self.on_power_sense(n),
            Event::ProviderTick(n) => self.on_provider_tick(n),
            Event::AckStart(n, parent) => self.on_ack_start(n, parent),
            Event::AckTimeout(n, parent) => self.on_ack_timeout(n, parent),
        }
    }
}
