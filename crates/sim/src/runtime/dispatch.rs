//! Bootstrap, the main event loop, and event routing.
//!
//! [`Engine::run`] drains the future-event list in `(time, seq)` order
//! until the post-run drain deadline; every popped event is offered to
//! the observers (before handling, so sinks see the pristine event) and
//! routed to its handler in the sibling modules.
//!
//! The loop is also where the fault layer intercepts: events addressed
//! to a crashed node — or scheduled in a previous life of a since-
//! rebooted node (see `faults.rs`) — are discarded before observers or
//! handlers see them, and a deterministic event budget bounds runaway
//! runs without ever consulting a wall clock.

use super::{Engine, DRAIN};

/// How a [`Engine::run_leg`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LegEnd {
    /// The pause budget was reached; the run can continue from a snapshot.
    Paused,
    /// The run is over: queue drained, drain deadline passed, or event
    /// budget exhausted — the same exits as the serial loop.
    Over,
}
use crate::events::{Event, EventQueue, NodeId};
use crate::metrics::SimResult;
use crate::scenario::TrafficModel;
use nomc_mac::MacEvent;
use nomc_rngcore::Rng;
use nomc_units::{SimDuration, SimTime};

impl Engine<'_, '_, '_> {
    pub(crate) fn run(mut self) -> SimResult {
        self.run_loop();
        self.finalize()
    }

    /// Like [`Engine::run`], but also reports whether the run stopped on
    /// the event budget instead of draining naturally.
    pub(crate) fn run_reporting_exhaustion(mut self) -> (SimResult, bool) {
        self.run_loop();
        let exhausted = self.exhausted;
        (self.finalize(), exhausted)
    }

    fn run_loop(&mut self) {
        self.bootstrap();
        self.run_window(SimTime::MAX);
    }

    /// Advances the engine through every queued event with `t < until`,
    /// in the exact order and with the exact side effects of the
    /// whole-run loop (`until == SimTime::MAX` *is* the whole-run loop).
    ///
    /// The first popped entry at or beyond `until` is *held* — with its
    /// original queue sequence number, which the fault layer's
    /// stale-event watermarks compare against — and re-examined on the
    /// next call, so windowed execution pops each entry exactly once.
    /// Returns `true` while the run can continue past `until`; `false`
    /// once it is over (queue drained, drain deadline passed, or event
    /// budget exhausted — the same three exits as the serial loop).
    pub(crate) fn run_window(&mut self, until: SimTime) -> bool {
        let deadline = SimTime::ZERO + self.sc.duration + DRAIN;
        loop {
            let Some((t, seq, ev)) = self.held.take().or_else(|| self.queue.pop_entry()) else {
                return false;
            };
            if t >= until {
                self.held = Some((t, seq, ev));
                return true;
            }
            if t > deadline {
                return false;
            }
            if self.events >= self.max_events {
                // Keep the popped entry: exhaustion must leave the queue
                // state intact so a snapshot taken here (or a resumed
                // bounded run) sees exactly what an uninterrupted run
                // with a larger budget would pop next.
                self.exhausted = true;
                self.held = Some((t, seq, ev));
                return false;
            }
            self.now = t;
            self.events += 1;
            if self.discards(seq, &ev) {
                continue;
            }
            self.obs.event(t, &ev);
            self.dispatch(ev);
        }
    }

    /// Advances exactly like [`Engine::run_window`]`(SimTime::MAX)` but
    /// additionally *pauses* — before popping anything, with no side
    /// effects — once `pause_at` events have been counted. An engine
    /// paused here is in precisely the state an uninterrupted run passes
    /// through after its `pause_at`-th event, which is what makes
    /// snapshots taken at the pause point resumable bit-identically.
    pub(crate) fn run_leg(&mut self, pause_at: u64) -> LegEnd {
        let deadline = SimTime::ZERO + self.sc.duration + DRAIN;
        loop {
            if self.events >= pause_at {
                return LegEnd::Paused;
            }
            let Some((t, seq, ev)) = self.held.take().or_else(|| self.queue.pop_entry()) else {
                return LegEnd::Over;
            };
            if t > deadline {
                return LegEnd::Over;
            }
            if self.events >= self.max_events {
                self.exhausted = true;
                self.held = Some((t, seq, ev));
                return LegEnd::Over;
            }
            self.now = t;
            self.events += 1;
            if self.discards(seq, &ev) {
                continue;
            }
            self.obs.event(t, &ev);
            self.dispatch(ev);
        }
    }

    pub(crate) fn bootstrap(&mut self) {
        let sender_ids: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_sender)
            .collect();
        for id in sender_ids {
            // Small random start jitter desynchronizes the saturated
            // sources, like staggered mote boot times.
            let jitter = SimDuration::from_micros(self.rng.gen_range(0..5000));
            let start = SimTime::ZERO + jitter;
            self.nodes[id].next_interval_at = start;
            if matches!(self.nodes[id].traffic, TrafficModel::Forward { .. }) {
                // Forwarders wake when their first credit arrives.
                self.nodes[id].wants_packet = true;
            } else {
                self.queue.schedule(start, Event::PacketReady(id));
            }
            self.queue.schedule(start, Event::ProviderTick(id));
            if self.provider_wants_sensing(id, start) {
                self.queue.schedule(start, Event::PowerSense(id));
            }
        }
        // Fault expansion comes last so an empty plan leaves the RNG
        // stream and every fault-free seq number untouched.
        self.schedule_faults();
    }

    /// Fault-layer admission control. Node-initiated events die with
    /// their node: while it is down, and — via the crash watermark —
    /// when they were scheduled before its last crash. Fault-control
    /// events and `TxEnd` always go through: the former drive the fault
    /// state machine itself, the latter closes out airtime the medium
    /// already committed to (the frame is on the air whether or not its
    /// sender lived to see it land).
    fn discards(&self, seq: u64, ev: &Event) -> bool {
        let n = match ev {
            Event::NodeDown(_)
            | Event::NodeUp(_)
            | Event::CcaStuckStart(_)
            | Event::CcaStuckEnd(_)
            | Event::TxEnd(..) => return false,
            Event::PacketReady(n)
            | Event::BackoffExpired(n)
            | Event::CcaDone(n)
            | Event::TxStart(n)
            | Event::SyncDone(n, _)
            | Event::PowerSense(n)
            | Event::ProviderTick(n)
            | Event::AckStart(n, _)
            | Event::AckTimeout(n, _) => *n,
        };
        self.nodes[n].down || self.is_stale(n, seq)
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::PacketReady(n) => self.on_packet_ready(n),
            Event::BackoffExpired(n) => self.feed_mac(n, MacEvent::BackoffExpired),
            Event::CcaDone(n) => self.on_cca_done(n),
            Event::TxStart(n) => self.on_tx_start(n),
            Event::TxEnd(n, id) => self.on_tx_end(n, id),
            Event::SyncDone(n, id) => self.on_sync_done(n, id),
            Event::PowerSense(n) => self.on_power_sense(n),
            Event::ProviderTick(n) => self.on_provider_tick(n),
            Event::AckStart(n, parent) => self.on_ack_start(n, parent),
            Event::AckTimeout(n, parent) => self.on_ack_timeout(n, parent),
            Event::NodeDown(n) => self.on_node_down(n),
            Event::NodeUp(n) => self.on_node_up(n),
            Event::CcaStuckStart(n) => self.on_cca_stuck_start(n),
            Event::CcaStuckEnd(n) => self.on_cca_stuck_end(n),
        }
    }
}
