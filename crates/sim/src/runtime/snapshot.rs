//! Mid-run engine snapshots: capture, serialize, restore, resume.
//!
//! A snapshot records every piece of *mutable* engine state — the
//! future-event list (with its original sequence numbers), the RNG
//! stream position, per-node MAC/provider/traffic state, in-flight
//! transmission metadata, the medium's airtime history, and the
//! built-in collector state (metrics, trace, timeline) — and nothing
//! derived: path loss, sync candidacy, airtimes, forwarder maps and
//! caches are all pure functions of the scenario and are recomputed by
//! `Engine::new` on restore. That split is what makes the contract
//! cheap to state and test: *run-to-event-K, snapshot, restore,
//! run-to-end is byte-identical to an uninterrupted run*, because a
//! restored engine is in exactly the state the uninterrupted engine
//! passes through after its K-th event.
//!
//! Snapshots serialize with the in-tree `nomc-json` codec (exact
//! `u64`/`f64` round-trips; see `crates/json`). Restoring is total:
//! corrupt or mismatched payloads produce a typed [`SnapshotError`],
//! never a panic — every index a resumed run would trust (node ids in
//! queued events, link indices in transmission metadata, received-power
//! vector lengths, queue sequence numbers) is bounds-checked here
//! first.
//!
//! Sharded runs snapshot as one [`ShardedSnapshot`]: the checkpoint
//! executor runs the plan's components *sequentially* (rank order) on
//! the same engines the threaded path uses, buffering relayed
//! boundary notes per rank; at completion the buffered logs replay
//! through the same canonical `(time, rank, seq)` merge. Shards are
//! fully independent — the partition unions everything that could
//! interact — so sequential execution is behaviorally identical to the
//! lockstep-windowed thread pool, and the merged result, trace,
//! timeline, and observer stream are byte-identical to
//! [`crate::engine::run_sharded`].

use super::node::{Node, Provider, RxAttempt};
use super::shard;
use super::shard::merge::{
    merge_logs, BoundaryEvent, Note, NoteSink, RelayObserver, ShardMsg, ShipFlags,
};
use super::shard::sync::split_budget;
use super::tx::TxMeta;
use super::Engine;
use crate::events::BucketQueue;
use crate::events::{Event, EventQueue, NodeId, TxId};
use crate::medium::Transmission;
use crate::metrics::{ErrorRecord, LinkMetrics, SimResult, TimelineRecord, TxOutcome};
use crate::rng::Xoshiro256StarStar;
use crate::runtime::dispatch::LegEnd;
use crate::runtime::observer::{
    PowerSample, SimObserver, ThresholdSample, TxOutcomeInfo, TxStartInfo,
};
use crate::scenario::Scenario;
use crate::trace::TraceRecord;
use nomc_core::AdjustorSnapshot;
use nomc_json::{Error, FromJson, Json, ToJson};
use nomc_mac::{MacEngine, MacSnapshot, MacStats};
use nomc_units::{Dbm, Megahertz, SimDuration, SimTime};
use std::fmt;

/// Version stamped into every serialized snapshot; bumped whenever the
/// payload layout changes incompatibly. A mismatch is a typed
/// [`SnapshotError::VersionSkew`], never a silent misread.
pub(crate) const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be decoded or re-attached to a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is not valid snapshot JSON, or an internal invariant
    /// (index bounds, sequence numbers, state-shape agreement with the
    /// scenario) does not hold.
    Malformed(String),
    /// The payload was written by an incompatible snapshot format
    /// version.
    VersionSkew {
        /// Version found in the payload.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The snapshot belongs to a different scenario (fingerprint over
    /// the canonical scenario JSON differs).
    ScenarioMismatch {
        /// Fingerprint recorded in the snapshot.
        found: u64,
        /// Fingerprint of the scenario being resumed.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::VersionSkew { found, expected } => {
                write!(f, "snapshot version {found} incompatible with {expected}")
            }
            SnapshotError::ScenarioMismatch { found, expected } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match scenario {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn malformed(e: Error) -> SnapshotError {
    SnapshotError::Malformed(e.to_string())
}

/// FNV-1a over a byte string (the same hash discipline the sweep
/// journal uses, computed independently so `nomc-sim` stays
/// dependency-free).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a scenario: FNV-1a over its canonical JSON (which
/// includes the seed and the recorder flags), so a snapshot can only be
/// resumed against the exact configuration that produced it.
pub(crate) fn scenario_fingerprint(sc: &Scenario) -> u64 {
    fnv1a(nomc_json::to_string(sc).as_bytes())
}

// ---------------------------------------------------------------------
// JSON codecs for the event-queue payloads.
// ---------------------------------------------------------------------

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let one = |tag: &str, n: NodeId| Json::object([(tag, n.to_json())]);
        let two = |tag: &str, n: NodeId, id: TxId| Json::object([(tag, (n, id).to_json())]);
        match *self {
            Event::PacketReady(n) => one("PacketReady", n),
            Event::BackoffExpired(n) => one("BackoffExpired", n),
            Event::CcaDone(n) => one("CcaDone", n),
            Event::TxStart(n) => one("TxStart", n),
            Event::TxEnd(n, id) => two("TxEnd", n, id),
            Event::SyncDone(n, id) => two("SyncDone", n, id),
            Event::PowerSense(n) => one("PowerSense", n),
            Event::ProviderTick(n) => one("ProviderTick", n),
            Event::AckStart(n, id) => two("AckStart", n, id),
            Event::AckTimeout(n, id) => two("AckTimeout", n, id),
            Event::NodeDown(n) => one("NodeDown", n),
            Event::NodeUp(n) => one("NodeUp", n),
            Event::CcaStuckStart(n) => one("CcaStuckStart", n),
            Event::CcaStuckEnd(n) => one("CcaStuckEnd", n),
        }
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for Event"))?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| Error::new("empty Event object"))?;
        let one = || NodeId::from_json(body);
        let two = || <(NodeId, TxId)>::from_json(body);
        match tag {
            "PacketReady" => Ok(Event::PacketReady(one()?)),
            "BackoffExpired" => Ok(Event::BackoffExpired(one()?)),
            "CcaDone" => Ok(Event::CcaDone(one()?)),
            "TxStart" => Ok(Event::TxStart(one()?)),
            "TxEnd" => two().map(|(n, id)| Event::TxEnd(n, id)),
            "SyncDone" => two().map(|(n, id)| Event::SyncDone(n, id)),
            "PowerSense" => Ok(Event::PowerSense(one()?)),
            "ProviderTick" => Ok(Event::ProviderTick(one()?)),
            "AckStart" => two().map(|(n, id)| Event::AckStart(n, id)),
            "AckTimeout" => two().map(|(n, id)| Event::AckTimeout(n, id)),
            "NodeDown" => Ok(Event::NodeDown(one()?)),
            "NodeUp" => Ok(Event::NodeUp(one()?)),
            "CcaStuckStart" => Ok(Event::CcaStuckStart(one()?)),
            "CcaStuckEnd" => Ok(Event::CcaStuckEnd(one()?)),
            other => Err(Error::new(format!("unknown Event tag `{other}`"))),
        }
    }
}

/// The node a queue event is addressed to. Exhaustive by design — a new
/// `Event` variant must decide here how restore-time bounds checks see
/// it.
fn event_node(ev: &Event) -> NodeId {
    match *ev {
        Event::PacketReady(n)
        | Event::BackoffExpired(n)
        | Event::CcaDone(n)
        | Event::TxStart(n)
        | Event::TxEnd(n, _)
        | Event::SyncDone(n, _)
        | Event::PowerSense(n)
        | Event::ProviderTick(n)
        | Event::AckStart(n, _)
        | Event::AckTimeout(n, _)
        | Event::NodeDown(n)
        | Event::NodeUp(n)
        | Event::CcaStuckStart(n)
        | Event::CcaStuckEnd(n) => n,
    }
}

impl ToJson for TxOutcome {
    fn to_json(&self) -> Json {
        let s = match self {
            TxOutcome::Received => "received",
            TxOutcome::CrcFailed => "crc_failed",
            TxOutcome::SyncMissed => "sync_missed",
            TxOutcome::ReceiverBusy => "receiver_busy",
        };
        ToJson::to_json(s)
    }
}

impl FromJson for TxOutcome {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value
            .as_str()
            .ok_or_else(|| Error::new("expected string for TxOutcome"))?
        {
            "received" => Ok(TxOutcome::Received),
            "crc_failed" => Ok(TxOutcome::CrcFailed),
            "sync_missed" => Ok(TxOutcome::SyncMissed),
            "receiver_busy" => Ok(TxOutcome::ReceiverBusy),
            other => Err(Error::new(format!("unknown TxOutcome `{other}`"))),
        }
    }
}

nomc_json::json_struct!(ErrorRecord {
    error_bits: u32,
    total_bits: u32,
    positions: Option<Vec<u32>>,
});

nomc_json::json_struct!(TimelineRecord {
    link: usize,
    start: SimTime,
    end: SimTime,
    outcome: TxOutcome,
    collided: bool,
});

nomc_json::json_struct!(LinkMetrics {
    network: usize,
    link_in_network: usize,
    sent: u64,
    forced_sent: u64,
    received: u64,
    sync_missed: u64,
    receiver_busy: u64,
    crc_failed: u64,
    collided: u64,
    collided_received: u64,
    retransmissions: u64,
    abandoned: u64,
    duplicates: u64,
    error_records: Vec<ErrorRecord>,
});

nomc_json::json_struct!(SimResult {
    measured: SimDuration,
    links: Vec<LinkMetrics>,
    network_frequencies: Vec<Megahertz>,
    mac_stats: Vec<MacStats>,
    tx_powers: Vec<Dbm>,
    final_thresholds: Vec<Dbm>,
    timeline: Vec<TimelineRecord>,
    trace: Vec<TraceRecord>,
    events: u64,
});

nomc_json::json_struct!(Transmission {
    id: TxId,
    tx_node: NodeId,
    link: usize,
    frequency: Megahertz,
    start: SimTime,
    mpdu_start: SimTime,
    end: SimTime,
    seq: u32,
    forced: bool,
    rx_power: Vec<Dbm>,
});

nomc_json::json_struct!(TxMeta {
    measured: bool,
    link: usize,
    intended_rx: NodeId,
    intended_busy: bool,
    outcome: Option<TxOutcome>,
    duplicate: bool,
    error_record: Option<ErrorRecord>,
});

// ---------------------------------------------------------------------
// Serial engine snapshot.
// ---------------------------------------------------------------------

/// The xoshiro256** stream position, serialized as a 4-word array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RngState(pub(crate) [u64; 4]);

impl ToJson for RngState {
    fn to_json(&self) -> Json {
        Json::Arr(self.0.iter().map(ToJson::to_json).collect())
    }
}

impl FromJson for RngState {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let words = <Vec<u64>>::from_json(value)?;
        let s: [u64; 4] = words
            .try_into()
            .map_err(|_| Error::new("RngState: expected 4 words"))?;
        Ok(RngState(s))
    }
}

/// One CCA-threshold provider's mutable state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ProviderState {
    /// A fixed threshold is stateless; nothing to carry.
    Fixed,
    /// The DCN adjustor's learned state.
    Dcn(AdjustorSnapshot),
}

impl ToJson for ProviderState {
    fn to_json(&self) -> Json {
        match self {
            ProviderState::Fixed => Json::object([("fixed", Json::Null)]),
            ProviderState::Dcn(s) => Json::object([("dcn", s.to_json())]),
        }
    }
}

impl FromJson for ProviderState {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for ProviderState"))?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| Error::new("empty ProviderState object"))?;
        match tag {
            "fixed" => Ok(ProviderState::Fixed),
            "dcn" => Ok(ProviderState::Dcn(AdjustorSnapshot::from_json(body)?)),
            other => Err(Error::new(format!("unknown ProviderState tag `{other}`"))),
        }
    }
}

/// One node's mutable state (everything [`Engine::new`] does not fully
/// determine from the scenario).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeState {
    pub(crate) stats: MacStats,
    pub(crate) rx: Option<(TxId, bool)>,
    pub(crate) transmitting: bool,
    pub(crate) next_interval_at: SimTime,
    pub(crate) forced_next: bool,
    pub(crate) seq: u32,
    pub(crate) awaiting_ack: Option<TxId>,
    pub(crate) last_tx: TxId,
    pub(crate) last_rx_seq: Option<u32>,
    pub(crate) credits: u64,
    pub(crate) wants_packet: bool,
    pub(crate) down: bool,
    pub(crate) cca_stuck: bool,
    pub(crate) stale_before_seq: u64,
    pub(crate) mac: Option<MacSnapshot>,
    pub(crate) provider: Option<ProviderState>,
}

nomc_json::json_struct!(NodeState {
    stats: MacStats,
    rx: Option<(TxId, bool)>,
    transmitting: bool,
    next_interval_at: SimTime,
    forced_next: bool,
    seq: u32,
    awaiting_ack: Option<TxId>,
    last_tx: TxId,
    last_rx_seq: Option<u32>,
    credits: u64,
    wants_packet: bool,
    down: bool,
    cca_stuck: bool,
    stale_before_seq: u64,
    mac: Option<MacSnapshot>,
    provider: Option<ProviderState>,
});

/// The medium's airtime history: slab entries in insertion order, each
/// flagged live (still indexed by its channel) or retained-only, plus
/// the running maximum airtime the prune horizon derives from.
#[derive(Debug)]
pub(crate) struct MediumState {
    pub(crate) history: Vec<(Transmission, bool)>,
    pub(crate) max_duration: SimDuration,
}

nomc_json::json_struct!(MediumState {
    history: Vec<(Transmission, bool)>,
    max_duration: SimDuration,
});

/// The complete mutable state of a serial `Engine`, detached from the
/// scenario that (re)constructs everything else.
#[derive(Debug)]
pub struct EngineSnapshot {
    pub(crate) fingerprint: u64,
    pub(crate) now: SimTime,
    pub(crate) events: u64,
    pub(crate) max_events: u64,
    pub(crate) exhausted: bool,
    pub(crate) rng: RngState,
    pub(crate) next_tx_id: TxId,
    pub(crate) queue: Vec<(SimTime, u64, Event)>,
    pub(crate) next_seq: u64,
    pub(crate) held: Option<(SimTime, u64, Event)>,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) tx_meta: Vec<(TxId, TxMeta)>,
    pub(crate) acks: Vec<(TxId, TxId, NodeId)>,
    pub(crate) medium: MediumState,
    pub(crate) metrics: Vec<LinkMetrics>,
    pub(crate) trace: Option<Vec<TraceRecord>>,
    pub(crate) timeline: Option<Vec<TimelineRecord>>,
}

nomc_json::json_struct!(EngineSnapshot {
    fingerprint: u64,
    now: SimTime,
    events: u64,
    max_events: u64,
    exhausted: bool,
    rng: RngState,
    next_tx_id: TxId,
    queue: Vec<(SimTime, u64, Event)>,
    next_seq: u64,
    held: Option<(SimTime, u64, Event)>,
    nodes: Vec<NodeState>,
    tx_meta: Vec<(TxId, TxMeta)>,
    acks: Vec<(TxId, TxId, NodeId)>,
    medium: MediumState,
    metrics: Vec<LinkMetrics>,
    trace: Option<Vec<TraceRecord>>,
    timeline: Option<Vec<TimelineRecord>>,
});

fn node_state(node: &Node) -> NodeState {
    NodeState {
        stats: node.stats,
        rx: node.rx.map(|a| (a.tx_id, a.synced)),
        transmitting: node.transmitting,
        next_interval_at: node.next_interval_at,
        forced_next: node.forced_next,
        seq: node.seq,
        awaiting_ack: node.awaiting_ack,
        last_tx: node.last_tx,
        last_rx_seq: node.last_rx_seq,
        credits: node.credits,
        wants_packet: node.wants_packet,
        down: node.down,
        cca_stuck: node.cca_stuck,
        stale_before_seq: node.stale_before_seq,
        mac: node.mac.as_ref().map(MacEngine::snapshot),
        provider: node.provider.as_ref().map(|p| match p {
            Provider::Fixed(_) => ProviderState::Fixed,
            Provider::Dcn(adj) => ProviderState::Dcn(adj.save()),
        }),
    }
}

/// Restores one node's mutable state onto a freshly constructed node.
/// Shape disagreements (MAC/provider presence, out-of-range backoff
/// exponents that would overflow the backoff draw) are typed errors.
fn restore_node(node: &mut Node, st: &NodeState, idx: usize) -> Result<(), SnapshotError> {
    match (&mut node.mac, &st.mac) {
        (Some(mac), Some(snap)) => {
            let params = *mac.params();
            if snap.be < params.min_be || snap.be > params.max_be {
                return Err(SnapshotError::Malformed(format!(
                    "node {idx}: backoff exponent {} outside [{}, {}]",
                    snap.be, params.min_be, params.max_be
                )));
            }
            *mac = MacEngine::restore(params, *snap);
        }
        (None, None) => {}
        (mac, snap) => {
            return Err(SnapshotError::Malformed(format!(
                "node {idx}: MAC presence mismatch (engine {}, snapshot {})",
                mac.is_some(),
                snap.is_some()
            )));
        }
    }
    match (&mut node.provider, &st.provider) {
        (Some(Provider::Fixed(_)), Some(ProviderState::Fixed)) => {}
        (Some(Provider::Dcn(adj)), Some(ProviderState::Dcn(snap))) => adj.load(snap.clone()),
        (None, None) => {}
        _ => {
            return Err(SnapshotError::Malformed(format!(
                "node {idx}: provider kind mismatch"
            )));
        }
    }
    node.stats = st.stats;
    node.rx = st.rx.map(|(tx_id, synced)| RxAttempt { tx_id, synced });
    node.transmitting = st.transmitting;
    node.next_interval_at = st.next_interval_at;
    node.forced_next = st.forced_next;
    node.seq = st.seq;
    node.awaiting_ack = st.awaiting_ack;
    node.last_tx = st.last_tx;
    node.last_rx_seq = st.last_rx_seq;
    node.credits = st.credits;
    node.wants_packet = st.wants_packet;
    node.down = st.down;
    node.cca_stuck = st.cca_stuck;
    node.stale_before_seq = st.stale_before_seq;
    Ok(())
}

impl<'a, 'o, 'e> Engine<'a, 'o, 'e> {
    /// Captures the complete mutable state of the engine. Pure read —
    /// capturing never perturbs the run.
    pub(crate) fn capture(&self) -> EngineSnapshot {
        let (history, max_duration) = self.medium.history();
        EngineSnapshot {
            fingerprint: scenario_fingerprint(self.sc),
            now: self.now,
            events: self.events,
            max_events: self.max_events,
            exhausted: self.exhausted,
            rng: RngState(self.rng.state()),
            next_tx_id: self.next_tx_id,
            queue: self.queue.entries(),
            next_seq: self.queue.next_seq(),
            held: self.held,
            nodes: self.nodes.iter().map(node_state).collect(),
            tx_meta: self
                .tx_meta
                .iter()
                .map(|(&id, m)| {
                    (
                        id,
                        TxMeta {
                            measured: m.measured,
                            link: m.link,
                            intended_rx: m.intended_rx,
                            intended_busy: m.intended_busy,
                            outcome: m.outcome,
                            duplicate: m.duplicate,
                            error_record: m.error_record.clone(),
                        },
                    )
                })
                .collect(),
            acks: self
                .acks
                .iter()
                .map(|(&ack, &(parent, sender))| (ack, parent, sender))
                .collect(),
            medium: MediumState {
                history,
                max_duration,
            },
            metrics: self.obs.metrics.links().to_vec(),
            trace: self.obs.trace.as_ref().map(|t| t.records().to_vec()),
            timeline: self.obs.timeline.as_ref().map(|t| t.records().to_vec()),
        }
    }

    /// Rebuilds an engine mid-run: constructs a fresh engine from the
    /// scenario (recomputing all derived state), then overwrites every
    /// mutable field from the snapshot. Total — corrupt payloads yield
    /// typed errors, never panics, which is what lets checkpoint
    /// supervisors fall back to a clean re-run.
    pub(crate) fn restore_from(
        sc: &'a Scenario,
        externals: &'o mut [&'e mut dyn SimObserver],
        snap: &EngineSnapshot,
    ) -> Result<Self, SnapshotError> {
        let expected = scenario_fingerprint(sc);
        if snap.fingerprint != expected {
            return Err(SnapshotError::ScenarioMismatch {
                found: snap.fingerprint,
                expected,
            });
        }
        if snap.rng.0 == [0u64; 4] {
            return Err(SnapshotError::Malformed(
                "all-zero RNG state (xoshiro256** has no such stream)".into(),
            ));
        }
        let mut engine = Engine::new(sc, externals);
        let n = engine.nodes.len();
        let links = engine.link_rx.len();
        if snap.nodes.len() != n {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {} nodes, scenario has {n}",
                snap.nodes.len()
            )));
        }
        if snap.metrics.len() != links {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {} link counters, scenario has {links}",
                snap.metrics.len()
            )));
        }
        // Bounds checks on every index a resumed run would trust.
        for &(_, seq, ref ev) in snap.queue.iter().chain(snap.held.iter()) {
            if seq >= snap.next_seq {
                return Err(SnapshotError::Malformed(format!(
                    "queued seq {seq} >= next_seq {}",
                    snap.next_seq
                )));
            }
            let node = event_node(ev);
            if node >= n {
                return Err(SnapshotError::Malformed(format!(
                    "queued event addresses node {node} of {n}"
                )));
            }
        }
        for (id, meta) in &snap.tx_meta {
            if meta.link >= links || meta.intended_rx >= n {
                return Err(SnapshotError::Malformed(format!(
                    "tx {id}: link {} / receiver {} out of range",
                    meta.link, meta.intended_rx
                )));
            }
        }
        for &(ack, _, sender) in &snap.acks {
            if sender >= n {
                return Err(SnapshotError::Malformed(format!(
                    "ack {ack}: sender {sender} out of range"
                )));
            }
        }
        for (i, (tx, _)) in snap.medium.history.iter().enumerate() {
            if tx.tx_node >= n || tx.rx_power.len() != n {
                return Err(SnapshotError::Malformed(format!(
                    "medium history entry {i}: node ids out of range"
                )));
            }
            if i > 0 && tx.id != snap.medium.history[i - 1].0.id + 1 {
                return Err(SnapshotError::Malformed(format!(
                    "medium history entry {i}: non-consecutive transmission id"
                )));
            }
        }
        engine.now = snap.now;
        engine.events = snap.events;
        engine.max_events = snap.max_events;
        engine.exhausted = snap.exhausted;
        engine.rng = Xoshiro256StarStar::from_state(snap.rng.0);
        engine.next_tx_id = snap.next_tx_id;
        engine.queue = BucketQueue::restore(&snap.queue, snap.next_seq);
        engine.held = snap.held;
        for (idx, (node, st)) in engine.nodes.iter_mut().zip(&snap.nodes).enumerate() {
            restore_node(node, st, idx)?;
        }
        engine.tx_meta = snap
            .tx_meta
            .iter()
            .map(|(id, m)| {
                (
                    *id,
                    TxMeta {
                        measured: m.measured,
                        link: m.link,
                        intended_rx: m.intended_rx,
                        intended_busy: m.intended_busy,
                        outcome: m.outcome,
                        duplicate: m.duplicate,
                        error_record: m.error_record.clone(),
                    },
                )
            })
            .collect();
        engine.acks = snap
            .acks
            .iter()
            .map(|&(ack, parent, sender)| (ack, (parent, sender)))
            .collect();
        engine
            .medium
            .restore_history(snap.medium.history.clone(), snap.medium.max_duration);
        engine.obs.metrics.restore_links(snap.metrics.clone());
        match (&mut engine.obs.trace, &snap.trace) {
            (Some(rec), Some(records)) => rec.restore_records(records.clone()),
            (None, None) => {}
            (rec, records) => {
                return Err(SnapshotError::Malformed(format!(
                    "trace recorder presence mismatch (engine {}, snapshot {})",
                    rec.is_some(),
                    records.is_some()
                )));
            }
        }
        match (&mut engine.obs.timeline, &snap.timeline) {
            (Some(rec), Some(records)) => rec.restore_records(records.clone()),
            (None, None) => {}
            (rec, records) => {
                return Err(SnapshotError::Malformed(format!(
                    "timeline recorder presence mismatch (engine {}, snapshot {})",
                    rec.is_some(),
                    records.is_some()
                )));
            }
        }
        Ok(engine)
    }
}

// ---------------------------------------------------------------------
// Sharded snapshots: sequential checkpoint executor + buffered merge.
// ---------------------------------------------------------------------

nomc_json::json_struct!(ShipFlags {
    events: bool,
    trace: bool,
    tx: bool,
    thresholds: bool,
    power: bool,
});

nomc_json::json_struct!(TxStartInfo {
    tx: TxId,
    node: NodeId,
    link: usize,
    seq: u32,
    forced: bool,
    retry: bool,
    measured: bool,
    at: SimTime,
    end: SimTime,
});

nomc_json::json_struct!(TxOutcomeInfo {
    tx: TxId,
    link: usize,
    receiver: NodeId,
    outcome: TxOutcome,
    collided: bool,
    duplicate: bool,
    measured: bool,
    start: SimTime,
    end: SimTime,
    error_record: Option<ErrorRecord>,
});

nomc_json::json_struct!(PowerSample {
    node: NodeId,
    link: usize,
    reading: Dbm,
    at: SimTime,
});

nomc_json::json_struct!(ThresholdSample {
    node: NodeId,
    link: usize,
    threshold: Dbm,
    at: SimTime,
});

impl ToJson for BoundaryEvent {
    fn to_json(&self) -> Json {
        match self {
            BoundaryEvent::Popped(ev) => Json::object([("Popped", ev.to_json())]),
            BoundaryEvent::Trace(record) => Json::object([("Trace", record.to_json())]),
            BoundaryEvent::TxStart(info) => Json::object([("TxStart", info.to_json())]),
            BoundaryEvent::TxOutcome(info) => Json::object([("TxOutcome", info.to_json())]),
            BoundaryEvent::Abandon { link, measured } => Json::object([(
                "Abandon",
                Json::object([("link", link.to_json()), ("measured", measured.to_json())]),
            )]),
            BoundaryEvent::Threshold(sample) => Json::object([("Threshold", sample.to_json())]),
            BoundaryEvent::Power(sample) => Json::object([("Power", sample.to_json())]),
        }
    }
}

impl FromJson for BoundaryEvent {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for BoundaryEvent"))?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| Error::new("empty BoundaryEvent object"))?;
        match tag {
            "Popped" => Ok(BoundaryEvent::Popped(Event::from_json(body)?)),
            "Trace" => Ok(BoundaryEvent::Trace(TraceRecord::from_json(body)?)),
            "TxStart" => Ok(BoundaryEvent::TxStart(TxStartInfo::from_json(body)?)),
            "TxOutcome" => Ok(BoundaryEvent::TxOutcome(Box::new(
                TxOutcomeInfo::from_json(body)?,
            ))),
            "Abandon" => {
                let b = body
                    .as_object()
                    .ok_or_else(|| Error::new("expected object for BoundaryEvent::Abandon"))?;
                let field = |name: &str| {
                    b.get(name).ok_or_else(|| {
                        Error::new(format!("missing field `{name}` in BoundaryEvent::Abandon"))
                    })
                };
                Ok(BoundaryEvent::Abandon {
                    link: usize::from_json(field("link")?)?,
                    measured: bool::from_json(field("measured")?)?,
                })
            }
            "Threshold" => Ok(BoundaryEvent::Threshold(ThresholdSample::from_json(body)?)),
            "Power" => Ok(BoundaryEvent::Power(PowerSample::from_json(body)?)),
            other => Err(Error::new(format!("unknown BoundaryEvent tag `{other}`"))),
        }
    }
}

nomc_json::json_struct!(Note {
    at: SimTime,
    seq: u64,
    ev: BoundaryEvent,
});

/// Where one shard rank stands in the sequential checkpoint executor.
#[derive(Debug)]
pub(crate) enum RankState {
    /// Not started yet (later ranks while an earlier one is paused).
    Fresh,
    /// Mid-run: the rank's engine state plus its relay counters.
    Paused {
        engine: EngineSnapshot,
        relay_seq: u64,
        relay_now: SimTime,
    },
    /// Finished; its result awaits the final merge.
    Done { result: SimResult, exhausted: bool },
}

impl ToJson for RankState {
    fn to_json(&self) -> Json {
        match self {
            RankState::Fresh => Json::object([("fresh", Json::Null)]),
            RankState::Paused {
                engine,
                relay_seq,
                relay_now,
            } => Json::object([(
                "paused",
                Json::object([
                    ("engine", engine.to_json()),
                    ("relay_seq", relay_seq.to_json()),
                    ("relay_now", relay_now.to_json()),
                ]),
            )]),
            RankState::Done { result, exhausted } => Json::object([(
                "done",
                Json::object([
                    ("result", result.to_json()),
                    ("exhausted", exhausted.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for RankState {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for RankState"))?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| Error::new("empty RankState object"))?;
        let field = |name: &str| {
            body.as_object()
                .and_then(|b| b.get(name))
                .ok_or_else(|| Error::new(format!("missing field `{name}` in RankState::{tag}")))
        };
        match tag {
            "fresh" => Ok(RankState::Fresh),
            "paused" => Ok(RankState::Paused {
                engine: EngineSnapshot::from_json(field("engine")?)?,
                relay_seq: u64::from_json(field("relay_seq")?)?,
                relay_now: SimTime::from_json(field("relay_now")?)?,
            }),
            "done" => Ok(RankState::Done {
                result: SimResult::from_json(field("result")?)?,
                exhausted: bool::from_json(field("exhausted")?)?,
            }),
            other => Err(Error::new(format!("unknown RankState tag `{other}`"))),
        }
    }
}

/// A paused sharded run: per-rank progress plus the buffered boundary
/// notes that the final canonical merge will replay.
#[derive(Debug)]
pub struct ShardedSnapshot {
    pub(crate) fingerprint: u64,
    pub(crate) ship: ShipFlags,
    pub(crate) max_events: u64,
    pub(crate) ranks: Vec<RankState>,
    pub(crate) logs: Vec<Vec<Note>>,
}

nomc_json::json_struct!(ShardedSnapshot {
    fingerprint: u64,
    ship: ShipFlags,
    max_events: u64,
    ranks: Vec<RankState>,
    logs: Vec<Vec<Note>>,
});

impl ShardedSnapshot {
    /// The starting state of a checkpointed sharded run: every rank
    /// fresh, no notes buffered. Unlike the threaded path — which
    /// samples [`ShipFlags::for_run`] against the observers attached
    /// for the whole run — a checkpointed run cannot know what
    /// observers later legs will attach, so it ships *every* note
    /// category. Replay gates nothing (gating happens at emission), so
    /// the externals present at the final merge see the complete
    /// stream, byte-identical to a threaded run with those observers
    /// attached throughout.
    pub(crate) fn fresh(sc: &Scenario, max_events: u64, shards: usize) -> Self {
        ShardedSnapshot {
            fingerprint: scenario_fingerprint(sc),
            ship: ShipFlags {
                events: true,
                trace: true,
                tx: true,
                thresholds: true,
                power: true,
            },
            max_events,
            ranks: (0..shards).map(|_| RankState::Fresh).collect(),
            logs: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

impl ShardedSnapshot {
    /// Replaces the persisted total event budget, re-splitting it over
    /// the ranks exactly as a fresh bounded run would (earlier ranks
    /// take the remainder). Ranks already done keep their results —
    /// their budget share is spent.
    pub(crate) fn set_budget(&mut self, max_events: u64) {
        self.max_events = max_events;
        let budgets = split_budget(max_events, self.ranks.len());
        for (state, budget) in self.ranks.iter_mut().zip(budgets) {
            if let RankState::Paused { engine, .. } = state {
                engine.max_events = budget;
            }
        }
    }
}

/// How one checkpointed sharded leg ended.
pub(crate) enum ShardedProgress {
    /// The pause budget was reached; resume from the returned snapshot.
    Paused(ShardedSnapshot),
    /// All ranks finished and the canonical merge ran.
    Done(SimResult, bool),
}

/// How one rank's leg ended (internal to [`run_sharded_leg`]).
enum RankLeg {
    Paused(EngineSnapshot),
    Over(SimResult, bool),
}

/// Advances a checkpointed sharded run until the *global* event count
/// (summed over ranks) reaches `pause_after`, or to completion.
///
/// Ranks run sequentially in rank order, each on the same engine and
/// with the same per-rank budget split the threaded executor uses;
/// relayed notes buffer per rank and replay through the canonical merge
/// once every rank is done. Shards are fully independent, so the
/// sequential schedule is behaviorally identical to the lockstep thread
/// pool and the merged output is byte-identical to
/// [`crate::engine::run_sharded`].
pub(crate) fn run_sharded_leg(
    sc: &Scenario,
    mut snap: ShardedSnapshot,
    externals: &mut [&mut dyn SimObserver],
    pause_after: u64,
) -> Result<ShardedProgress, SnapshotError> {
    let expected = scenario_fingerprint(sc);
    if snap.fingerprint != expected {
        return Err(SnapshotError::ScenarioMismatch {
            found: snap.fingerprint,
            expected,
        });
    }
    let plan = shard::plan(sc);
    if snap.ranks.len() != plan.len() || snap.logs.len() != plan.len() {
        return Err(SnapshotError::Malformed(format!(
            "snapshot has {} ranks, plan has {}",
            snap.ranks.len(),
            plan.len()
        )));
    }
    let budgets = split_budget(snap.max_events, plan.len());
    let mut done_events: u64 = snap
        .ranks
        .iter()
        .map(|r| match r {
            RankState::Done { result, .. } => result.events,
            RankState::Fresh | RankState::Paused { .. } => 0,
        })
        .sum();
    for (rank, spec) in plan.iter().enumerate() {
        if matches!(snap.ranks[rank], RankState::Done { .. }) {
            continue;
        }
        // Worker-local copy with the heavyweight recorders off, exactly
        // like the threaded executor: the merge rebuilds the trace and
        // timeline from relayed notes.
        let mut sub = spec.scenario.clone();
        sub.record_trace = false;
        sub.record_timeline = false;
        let state = std::mem::replace(&mut snap.ranks[rank], RankState::Fresh);
        let (tx, rx) = std::sync::mpsc::channel();
        let (mut relay, paused_engine) = match state {
            RankState::Paused {
                engine,
                relay_seq,
                relay_now,
            } => (
                RelayObserver::resumed(NoteSink::Unbounded(tx), snap.ship, relay_seq, relay_now),
                Some(engine),
            ),
            RankState::Fresh | RankState::Done { .. } => (
                RelayObserver::resumed(NoteSink::Unbounded(tx), snap.ship, 0, SimTime::ZERO),
                None,
            ),
        };
        let target = if pause_after == u64::MAX {
            u64::MAX
        } else {
            pause_after.saturating_sub(done_events)
        };
        let leg = {
            let mut slots: [&mut dyn SimObserver; 1] = [&mut relay];
            let mut engine = match &paused_engine {
                Some(es) => Engine::restore_from(&sub, &mut slots, es)?,
                None => {
                    let mut e = Engine::new(&sub, &mut slots);
                    e.max_events = budgets[rank];
                    e.bootstrap();
                    e
                }
            };
            match engine.run_leg(target) {
                LegEnd::Paused => RankLeg::Paused(engine.capture()),
                LegEnd::Over => {
                    let exhausted = engine.exhausted;
                    RankLeg::Over(engine.finalize(), exhausted)
                }
            }
        };
        let relay_seq = relay.seq();
        let relay_now = relay.now();
        drop(relay);
        while let Ok(msg) = rx.try_recv() {
            if let ShardMsg::Note(note) = msg {
                snap.logs[rank].push(*note);
            }
        }
        match leg {
            RankLeg::Paused(engine) => {
                snap.ranks[rank] = RankState::Paused {
                    engine,
                    relay_seq,
                    relay_now,
                };
                return Ok(ShardedProgress::Paused(snap));
            }
            RankLeg::Over(result, exhausted) => {
                done_events += result.events;
                snap.ranks[rank] = RankState::Done { result, exhausted };
            }
        }
    }
    let mut results = Vec::with_capacity(plan.len());
    for r in snap.ranks {
        match r {
            RankState::Done { result, exhausted } => results.push((result, exhausted)),
            RankState::Fresh | RankState::Paused { .. } => {
                return Err(SnapshotError::Malformed(
                    "rank left unfinished after completion sweep".into(),
                ));
            }
        }
    }
    let (result, exhausted) = merge_logs(sc, &plan, snap.logs, results, externals);
    Ok(ShardedProgress::Done(result, exhausted))
}

// ---------------------------------------------------------------------
// Wire format: versioned envelope over the serial/sharded payloads.
// ---------------------------------------------------------------------

/// A paused run of either execution shape.
#[derive(Debug)]
pub(crate) enum SnapInner {
    Serial(Box<EngineSnapshot>),
    Sharded(ShardedSnapshot),
}

/// Serializes a paused run as versioned snapshot JSON.
pub(crate) fn encode(inner: &SnapInner) -> String {
    let (kind, payload) = match inner {
        SnapInner::Serial(s) => ("serial", s.to_json()),
        SnapInner::Sharded(s) => ("sharded", s.to_json()),
    };
    Json::object([
        ("version", SNAPSHOT_VERSION.to_json()),
        ("kind", ToJson::to_json(kind)),
        ("payload", payload),
    ])
    .dump()
}

/// Parses versioned snapshot JSON back into a paused run. Total: every
/// failure mode is a typed [`SnapshotError`].
pub(crate) fn decode(text: &str) -> Result<SnapInner, SnapshotError> {
    let value: Json = text
        .parse()
        .map_err(|e: Error| SnapshotError::Malformed(e.to_string()))?;
    let obj = value
        .as_object()
        .ok_or_else(|| SnapshotError::Malformed("expected top-level object".into()))?;
    let version = obj
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| SnapshotError::Malformed("missing snapshot version".into()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionSkew {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| SnapshotError::Malformed("missing snapshot kind".into()))?;
    let payload = obj
        .get("payload")
        .ok_or_else(|| SnapshotError::Malformed("missing snapshot payload".into()))?;
    match kind {
        "serial" => Ok(SnapInner::Serial(Box::new(
            EngineSnapshot::from_json(payload).map_err(malformed)?,
        ))),
        "sharded" => Ok(SnapInner::Sharded(
            ShardedSnapshot::from_json(payload).map_err(malformed)?,
        )),
        other => Err(SnapshotError::Malformed(format!(
            "unknown snapshot kind `{other}`"
        ))),
    }
}
