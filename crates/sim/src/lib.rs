//! # nomc-sim
//!
//! A deterministic discrete-event simulator for multi-channel IEEE
//! 802.15.4 networks — the reproduction's stand-in for the paper's
//! 35-mote MicaZ testbed.
//!
//! * [`rng`] — platform-independent xoshiro256** randomness,
//! * [`events`] — the future-event list with deterministic tie-breaking,
//! * [`medium`] — the shared RF medium: per-observer coupled powers,
//!   segment-wise SINR histories, collision predicates,
//! * [`reach`] — the interaction-reachability predicates shared by the
//!   medium's channel cutoffs and the shard partitioner,
//! * [`scenario`] — deployment + behaviour + propagation configuration,
//! * [`engine`] — the [`engine::run`]/[`engine::run_with`] entry points,
//! * [`runtime`] — the layered event loop behind them (dispatch, node
//!   state, frame/ACK life cycles, power sensing) plus the pluggable
//!   [`runtime::observer::SimObserver`] sink layer,
//! * [`metrics`] — per-link/network counters and the paper's derived
//!   metrics (throughput, PRR, CPRR),
//! * [`energy`] — CC2420 radio-energy accounting per transmitter,
//! * [`trace`] — optional structured event traces (JSONL) for debugging.
//!
//! # Examples
//!
//! Simulate one saturated 2-link network for five seconds:
//!
//! ```
//! use nomc_sim::{engine, scenario::Scenario};
//! use nomc_topology::{paper, spectrum::ChannelPlan};
//! use nomc_units::{Dbm, Megahertz, SimDuration};
//!
//! let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
//! let deployment = paper::line_deployment(&plan, Dbm::new(0.0));
//! let mut builder = Scenario::builder(deployment);
//! builder.duration(SimDuration::from_secs(5)).warmup(SimDuration::from_secs(1));
//! let result = engine::run(&builder.build()?);
//! assert!(result.total_throughput() > 100.0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod engine;
pub mod events;
pub mod medium;
pub mod metrics;
pub mod reach;
pub mod rng;
pub mod runtime;
pub mod scenario;
pub mod trace;

pub use engine::{
    restore, resume_bounded, run, run_bounded, run_sharded, run_sharded_bounded, run_sharded_until,
    run_sharded_with, run_until, run_with, shard_plan, snapshot, BoundedRun, RunProgress,
    RunSnapshot, SnapshotError,
};
pub use metrics::{LinkMetrics, NetworkMetrics, SimResult};
pub use runtime::observer::{
    PowerSample, SimObserver, ThresholdSample, TxOutcomeInfo, TxStartInfo,
};
pub use runtime::sinks::{
    EnergyMeter, JsonlTracer, RecoveryMeter, RecoveryReport, TimelineRecorder, TraceRecorder,
};
pub use scenario::{
    CrashFault, DriftFault, FaultPlan, JammerFault, NetworkBehavior, Scenario, ScenarioBuilder,
    ScenarioError, StuckCcaFault, ThresholdMode, TrafficModel,
};
