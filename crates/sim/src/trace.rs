//! Structured event traces.
//!
//! When [`crate::Scenario::record_trace`] is set, the engine appends one
//! [`TraceRecord`] per radio-level event. Traces serialize to JSON lines
//! (`nomc run --trace out.jsonl`), which is how a stuck calibration or a
//! surprising DCN decision gets debugged: the trace shows exactly which
//! CCA read what power against what threshold, and how every frame
//! fared.

use crate::events::{NodeId, TxId};
use nomc_json::{Error, FromJson, Json, ToJson};
use nomc_units::{Dbm, SimTime};

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The traced event kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A CCA measurement completed.
    Cca {
        /// Sensing node.
        node: NodeId,
        /// RSSI-register reading.
        sensed_dbm: Dbm,
        /// Threshold compared against (post-clamp).
        threshold_dbm: Dbm,
        /// The verdict.
        clear: bool,
    },
    /// A frame's first symbol left the antenna.
    TxStart {
        /// Transmitting node.
        node: NodeId,
        /// Transmission id.
        tx: TxId,
        /// Frame sequence number.
        seq: u32,
        /// Whether the transmit-anyway policy forced it.
        forced: bool,
    },
    /// A frame finished at its intended receiver.
    Outcome {
        /// The transmission.
        tx: TxId,
        /// The receiver.
        receiver: NodeId,
        /// `"received" | "crc_failed" | "sync_missed" | "receiver_busy"`.
        outcome: &'static str,
    },
    /// An Imm-ACK was decoded by the original sender.
    AckDelivered {
        /// The acknowledged data transmission.
        tx: TxId,
        /// The sender that received the ACK.
        sender: NodeId,
    },
    /// A sender's `macAckWaitDuration` expired without the ACK.
    AckTimedOut {
        /// The unacknowledged data transmission.
        tx: TxId,
        /// The waiting sender.
        sender: NodeId,
    },
    /// A scheduled fault fired at a node (see `FaultPlan`).
    Fault {
        /// The afflicted node.
        node: NodeId,
        /// `"down" | "up" | "cca_stuck" | "cca_released"`.
        fault: &'static str,
    },
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        Json::object([("at", self.at.to_json()), ("kind", self.kind.to_json())])
    }
}

impl ToJson for TraceKind {
    fn to_json(&self) -> Json {
        match self {
            TraceKind::Cca {
                node,
                sensed_dbm,
                threshold_dbm,
                clear,
            } => Json::object([(
                "Cca",
                Json::object([
                    ("node", node.to_json()),
                    ("sensed_dbm", sensed_dbm.to_json()),
                    ("threshold_dbm", threshold_dbm.to_json()),
                    ("clear", clear.to_json()),
                ]),
            )]),
            TraceKind::TxStart {
                node,
                tx,
                seq,
                forced,
            } => Json::object([(
                "TxStart",
                Json::object([
                    ("node", node.to_json()),
                    ("tx", tx.to_json()),
                    ("seq", seq.to_json()),
                    ("forced", forced.to_json()),
                ]),
            )]),
            TraceKind::Outcome {
                tx,
                receiver,
                outcome,
            } => Json::object([(
                "Outcome",
                Json::object([
                    ("tx", tx.to_json()),
                    ("receiver", receiver.to_json()),
                    ("outcome", outcome.to_json()),
                ]),
            )]),
            TraceKind::AckDelivered { tx, sender } => Json::object([(
                "AckDelivered",
                Json::object([("tx", tx.to_json()), ("sender", sender.to_json())]),
            )]),
            TraceKind::AckTimedOut { tx, sender } => Json::object([(
                "AckTimedOut",
                Json::object([("tx", tx.to_json()), ("sender", sender.to_json())]),
            )]),
            TraceKind::Fault { node, fault } => Json::object([(
                "Fault",
                Json::object([("node", node.to_json()), ("fault", fault.to_json())]),
            )]),
        }
    }
}

impl FromJson for TraceRecord {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for TraceRecord"))?;
        let at = obj
            .get("at")
            .ok_or_else(|| Error::new("missing field `at` in TraceRecord"))?;
        let kind = obj
            .get("kind")
            .ok_or_else(|| Error::new("missing field `kind` in TraceRecord"))?;
        Ok(TraceRecord {
            at: SimTime::from_json(at)?,
            kind: TraceKind::from_json(kind)?,
        })
    }
}

/// Maps a decoded outcome string back onto the engine's static strings,
/// so round-tripped records compare (and re-serialize) identically.
fn static_outcome(s: &str) -> Result<&'static str, Error> {
    match s {
        "received" => Ok("received"),
        "crc_failed" => Ok("crc_failed"),
        "sync_missed" => Ok("sync_missed"),
        "receiver_busy" => Ok("receiver_busy"),
        other => Err(Error::new(format!("unknown trace outcome `{other}`"))),
    }
}

/// Maps a decoded fault string back onto the engine's static strings.
fn static_fault(s: &str) -> Result<&'static str, Error> {
    match s {
        "down" => Ok("down"),
        "up" => Ok("up"),
        "cca_stuck" => Ok("cca_stuck"),
        "cca_released" => Ok("cca_released"),
        other => Err(Error::new(format!("unknown trace fault `{other}`"))),
    }
}

impl FromJson for TraceKind {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::new("expected object for TraceKind"))?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| Error::new("empty TraceKind object"))?;
        let field = |name: &str| {
            body.as_object()
                .and_then(|b| b.get(name))
                .ok_or_else(|| Error::new(format!("missing field `{name}` in TraceKind::{tag}")))
        };
        match tag {
            "Cca" => Ok(TraceKind::Cca {
                node: NodeId::from_json(field("node")?)?,
                sensed_dbm: Dbm::from_json(field("sensed_dbm")?)?,
                threshold_dbm: Dbm::from_json(field("threshold_dbm")?)?,
                clear: bool::from_json(field("clear")?)?,
            }),
            "TxStart" => Ok(TraceKind::TxStart {
                node: NodeId::from_json(field("node")?)?,
                tx: TxId::from_json(field("tx")?)?,
                seq: u32::from_json(field("seq")?)?,
                forced: bool::from_json(field("forced")?)?,
            }),
            "Outcome" => Ok(TraceKind::Outcome {
                tx: TxId::from_json(field("tx")?)?,
                receiver: NodeId::from_json(field("receiver")?)?,
                outcome: static_outcome(&String::from_json(field("outcome")?)?)?,
            }),
            "AckDelivered" => Ok(TraceKind::AckDelivered {
                tx: TxId::from_json(field("tx")?)?,
                sender: NodeId::from_json(field("sender")?)?,
            }),
            "AckTimedOut" => Ok(TraceKind::AckTimedOut {
                tx: TxId::from_json(field("tx")?)?,
                sender: NodeId::from_json(field("sender")?)?,
            }),
            "Fault" => Ok(TraceKind::Fault {
                node: NodeId::from_json(field("node")?)?,
                fault: static_fault(&String::from_json(field("fault")?)?)?,
            }),
            other => Err(Error::new(format!("unknown TraceKind tag `{other}`"))),
        }
    }
}

/// Renders records as JSON lines.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().dump());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_one_line_per_record() {
        let records = vec![
            TraceRecord {
                at: SimTime::from_micros(128),
                kind: TraceKind::Cca {
                    node: 0,
                    sensed_dbm: Dbm::new(-80.0),
                    threshold_dbm: Dbm::new(-77.0),
                    clear: true,
                },
            },
            TraceRecord {
                at: SimTime::from_micros(320),
                kind: TraceKind::TxStart {
                    node: 0,
                    tx: 1,
                    seq: 1,
                    forced: false,
                },
            },
        ];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"Cca\""));
        assert!(text.contains("\"TxStart\""));
        // Each line is valid JSON.
        for line in text.lines() {
            let _: Json = line.parse().expect("valid json");
        }
    }
}
