//! `nomc-lint` — the workspace's in-tree static-analysis gate.
//!
//! The reproduction's core promise (bit-identical DCN figures for a
//! given scenario + seed, byte-identical metrics JSON in the Fig. 4
//! regression) rests on invariants no compiler checks: no hash-order or
//! wall-clock leaks in the report path, unit-carrying quantities behind
//! `nomc-units` newtypes, total float comparisons, pure observer sinks,
//! exhaustive event dispatch, no silent panics in the simulator hot
//! path, and a hermetic dependency graph. This crate encodes those
//! invariants as machine-checked rules over the workspace sources (see
//! DESIGN.md §8):
//!
//! | rule id               | scope                                    |
//! |-----------------------|------------------------------------------|
//! | `determinism`         | `sim`/`mac`/`core`/`experiments` src     |
//! | `unit-safety`         | fn params/fields/lets, all non-test crates |
//! | `panic-hygiene`       | all non-test `sim/src/**` sources        |
//! | `dep-audit`           | every `Cargo.toml`                       |
//! | `float-totality`      | `sim`/`phy`/`mac`/`core`/`experiments`   |
//! | `observer-purity`     | every `impl SimObserver`                 |
//! | `exhaustive-dispatch` | `sim/src/runtime/{dispatch,faults,snapshot}.rs` + shard merge |
//! | `dead-allow`          | every allow directive                    |
//!
//! The line-oriented v1 rules run on the lexed [`source::SourceFile`]
//! view; the flow-aware v2 rules run on the [`parser`] item stream
//! (lexer → token stream → items → rules — no expression AST).
//!
//! Diagnostics render as `file:line: rule-id: message`. A finding is
//! suppressed by `// nomc-lint: allow(<rule-id>)` (`#` comment in TOML)
//! on the same line or the line directly above — and every directive is
//! *accounted*: one that suppresses nothing is itself a `dead-allow`
//! error, so the escape-hatch inventory (reported by `--format json`)
//! stays honest. Each live allow must be justified in DESIGN.md §8.
//!
//! In-tree only (`nomc-json` for the JSON output), fully offline.

pub mod diag;
pub mod parser;
pub mod rules;
pub mod source;

pub use diag::Diagnostic;

use nomc_json::{Json, Number};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One consumed (live) allow directive entry: the escape-hatch
/// inventory `--format json` reports and CI diffs against its golden.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowRecord {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// The rule the directive suppressed diagnostics of.
    pub rule: String,
}

/// The lint outcome for one file: post-suppression diagnostics plus the
/// directives that earned their keep.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Diagnostics surviving allow suppression (including `dead-allow`
    /// findings for directives that suppressed nothing).
    pub diagnostics: Vec<Diagnostic>,
    /// Consumed allow directives, one record per (directive, rule).
    pub allows: Vec<AllowRecord>,
}

/// The outcome of a workspace run.
#[derive(Debug)]
pub struct LintReport {
    /// Sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Sorted consumed-allow inventory (empty is the target state).
    pub allows: Vec<AllowRecord>,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

impl LintReport {
    /// The machine-readable report: `{"diagnostics": […], "allows":
    /// […]}`. Deliberately excludes `files_scanned`, which churns with
    /// every added file and would invalidate the committed golden.
    pub fn to_json(&self) -> Json {
        let s = |v: &str| Json::Str(v.to_string());
        let n = |v: usize| Json::Num(Number::U64(v as u64));
        let diagnostics = Json::array(self.diagnostics.iter().map(|d| {
            Json::object([
                ("file", s(&d.file)),
                ("line", n(d.line)),
                ("rule", s(d.rule)),
                ("message", s(&d.message)),
            ])
        }));
        let allows = Json::array(self.allows.iter().map(|a| {
            Json::object([
                ("file", s(&a.file)),
                ("line", n(a.line)),
                ("rule", s(&a.rule)),
            ])
        }));
        Json::object([("diagnostics", diagnostics), ("allows", allows)])
    }
}

/// Runs every source rule applicable to `rel_path` over `content`,
/// with allow accounting.
pub fn lint_source_full(rel_path: &str, content: &str) -> FileLint {
    let sf = source::SourceFile::parse(content);
    let items = parser::parse(&sf);
    let tokens = parser::tokenize(&sf);
    let mut raw = Vec::new();
    rules::determinism::check(rel_path, &sf, &mut raw);
    rules::unit_safety::check(rel_path, &items, &mut raw);
    rules::panic_hygiene::check(rel_path, &sf, &mut raw);
    rules::float_totality::check(rel_path, &tokens, &items, &mut raw);
    rules::observer_purity::check(rel_path, &items, &mut raw);
    rules::exhaustive_dispatch::check(rel_path, &items, &mut raw);
    apply_allows(rel_path, &sf.directives(), raw)
}

/// Runs the manifest rule (`dep-audit`) over one `Cargo.toml`, with
/// allow accounting.
pub fn lint_manifest_full(rel_path: &str, content: &str) -> FileLint {
    let mut raw = Vec::new();
    rules::dep_audit::check(rel_path, content, &mut raw);
    apply_allows(rel_path, &rules::dep_audit::directives(content), raw)
}

/// [`lint_source_full`], diagnostics only.
pub fn lint_source(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    lint_source_full(rel_path, content).diagnostics
}

/// [`lint_manifest_full`], diagnostics only.
pub fn lint_manifest(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    lint_manifest_full(rel_path, content).diagnostics
}

/// Suppresses `raw` diagnostics covered by `directives`, accounting
/// consumption per (directive, rule): consumed pairs become
/// [`AllowRecord`]s, unconsumed ones become `dead-allow` diagnostics.
/// `dead-allow` findings are emitted *after* suppression, so they are
/// unsuppressible by construction.
fn apply_allows(
    rel_path: &str,
    directives: &[source::Directive],
    raw: Vec<Diagnostic>,
) -> FileLint {
    let mut consumed: Vec<Vec<bool>> = directives
        .iter()
        .map(|d| vec![false; d.rules.len()])
        .collect();
    let mut diagnostics = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (di, dir) in directives.iter().enumerate() {
            if !dir.covers.contains(&d.line) {
                continue;
            }
            if let Some(ri) = dir.rules.iter().position(|r| r == d.rule) {
                consumed[di][ri] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            diagnostics.push(d);
        }
    }
    let mut allows = Vec::new();
    for (di, dir) in directives.iter().enumerate() {
        for (ri, rule) in dir.rules.iter().enumerate() {
            if consumed[di][ri] {
                allows.push(AllowRecord {
                    file: rel_path.to_string(),
                    line: dir.line,
                    rule: rule.clone(),
                });
            } else {
                let message = if rules::ALL.contains(&rule.as_str()) {
                    rules::dead_allow::dead_message(rule)
                } else {
                    rules::dead_allow::unknown_rule_message(rule)
                };
                diagnostics.push(Diagnostic::new(
                    rel_path,
                    dir.line,
                    rules::dead_allow::RULE,
                    message,
                ));
            }
        }
    }
    diagnostics.sort();
    FileLint {
        diagnostics,
        allows,
    }
}

/// Walks the workspace rooted at `root` and lints every `.rs` file and
/// `Cargo.toml`, skipping `target/`, VCS metadata, and the lint's own
/// fixture corpus (`**/tests/fixtures/**`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect(root, Path::new(""), &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    let mut allows = Vec::new();
    let mut files_scanned = 0;
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let content = fs::read_to_string(root.join(rel))?;
        files_scanned += 1;
        let file = if rel_str.ends_with("Cargo.toml") {
            lint_manifest_full(&rel_str, &content)
        } else {
            lint_source_full(&rel_str, &content)
        };
        diagnostics.extend(file.diagnostics);
        allows.extend(file.allows);
    }
    diagnostics.sort();
    diagnostics.dedup();
    allows.sort();
    allows.dedup();
    Ok(LintReport {
        diagnostics,
        allows,
        files_scanned,
    })
}

fn collect(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let dir = root.join(rel);
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name_str = name.to_string_lossy().into_owned();
        let child = rel.join(&name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name_str == "target" || name_str.starts_with('.') {
                continue;
            }
            if name_str == "fixtures" && rel.file_name().is_some_and(|p| p == "tests") {
                continue;
            }
            collect(root, &child, out)?;
        } else if ty.is_file() && (name_str.ends_with(".rs") || name_str == "Cargo.toml") {
            out.push(child);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_filters_source_diagnostics() {
        let src = "use std::collections::HashMap; // nomc-lint: allow(determinism)\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
    }

    #[test]
    fn diagnostics_are_rule_tagged() {
        let src = "use std::collections::HashMap;\n";
        let d = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(d[0].rule, rules::determinism::RULE);
        assert!(rules::ALL.contains(&d[0].rule));
    }

    #[test]
    fn consumed_allows_are_inventoried() {
        let src = "use std::collections::HashMap; // nomc-lint: allow(determinism)\n";
        let file = lint_source_full("crates/sim/src/x.rs", src);
        assert!(file.diagnostics.is_empty());
        assert_eq!(
            file.allows,
            vec![AllowRecord {
                file: "crates/sim/src/x.rs".into(),
                line: 1,
                rule: "determinism".into(),
            }]
        );
    }

    #[test]
    fn dead_allows_are_errors() {
        let src = "// nomc-lint: allow(determinism)\nlet x = 1;\n";
        let file = lint_source_full("crates/sim/src/x.rs", src);
        assert!(file.allows.is_empty());
        assert_eq!(file.diagnostics.len(), 1);
        assert_eq!(file.diagnostics[0].rule, rules::dead_allow::RULE);
        assert_eq!(file.diagnostics[0].line, 1);
        assert!(file.diagnostics[0].message.contains("stale"));
    }

    #[test]
    fn unknown_rule_allows_are_errors() {
        let src = "use std::f64; // nomc-lint: allow(no-such-rule)\n";
        let file = lint_source_full("crates/sim/src/x.rs", src);
        assert_eq!(file.diagnostics.len(), 1);
        assert_eq!(file.diagnostics[0].rule, rules::dead_allow::RULE);
        assert!(file.diagnostics[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_dead_allow_is_self_defeating() {
        // `dead-allow` findings are generated after suppression, so a
        // directive naming the rule can never consume anything — it is
        // reported dead itself.
        let src = "// nomc-lint: allow(dead-allow)\nlet x = 1;\n";
        let file = lint_source_full("crates/sim/src/x.rs", src);
        assert_eq!(file.diagnostics.len(), 1);
        assert_eq!(file.diagnostics[0].rule, rules::dead_allow::RULE);
    }

    #[test]
    fn multi_rule_directive_accounts_each_rule() {
        // The determinism half is consumed, the unit-safety half is
        // dead: one allow record plus one dead-allow diagnostic.
        let src = "use std::collections::HashMap; // nomc-lint: allow(determinism, unit-safety)\n";
        let file = lint_source_full("crates/sim/src/x.rs", src);
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].rule, "determinism");
        assert_eq!(file.diagnostics.len(), 1);
        assert_eq!(file.diagnostics[0].rule, rules::dead_allow::RULE);
    }

    #[test]
    fn manifest_allows_are_accounted_too() {
        let live = "[dependencies]\nserde = \"1\" # nomc-lint: allow(dep-audit)\n";
        let file = lint_manifest_full("crates/x/Cargo.toml", live);
        assert!(file.diagnostics.is_empty());
        assert_eq!(file.allows.len(), 1);
        let dead = "[dependencies]\n# nomc-lint: allow(dep-audit)\nnomc-json.workspace = true\n";
        let file = lint_manifest_full("crates/x/Cargo.toml", dead);
        assert_eq!(file.diagnostics.len(), 1);
        assert_eq!(file.diagnostics[0].rule, rules::dead_allow::RULE);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = LintReport {
            diagnostics: vec![Diagnostic::new("a.rs", 3, "determinism", "msg".into())],
            allows: vec![AllowRecord {
                file: "b.rs".into(),
                line: 9,
                rule: "unit-safety".into(),
            }],
            files_scanned: 2,
        };
        let json = report.to_json().dump();
        assert_eq!(
            json,
            "{\"diagnostics\":[{\"file\":\"a.rs\",\"line\":3,\"rule\":\"determinism\",\
             \"message\":\"msg\"}],\"allows\":[{\"file\":\"b.rs\",\"line\":9,\
             \"rule\":\"unit-safety\"}]}"
        );
        assert!(!json.contains("files_scanned"));
    }
}
