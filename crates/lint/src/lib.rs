//! `nomc-lint` — the workspace's in-tree static-analysis gate.
//!
//! The reproduction's core promise (bit-identical DCN figures for a
//! given scenario + seed, byte-identical metrics JSON in the Fig. 4
//! regression) rests on invariants no compiler checks: no hash-order or
//! wall-clock leaks in the report path, unit-carrying quantities behind
//! `nomc-units` newtypes at public API boundaries, no silent panics in
//! the simulator hot path, and a hermetic dependency graph. This crate
//! encodes those invariants as four machine-checked rules over the
//! workspace sources (see DESIGN.md §8):
//!
//! | rule id        | scope                                   |
//! |----------------|-----------------------------------------|
//! | `determinism`  | `sim`/`mac`/`core`/`experiments` src    |
//! | `unit-safety`  | `phy`/`mac`/`core`/`radio` public `fn`s |
//! | `panic-hygiene`| all non-test `sim/src/**` sources       |
//! | `dep-audit`    | every `Cargo.toml`                      |
//!
//! Diagnostics render as `file:line: rule-id: message`. A finding is
//! suppressed by `// nomc-lint: allow(<rule-id>)` (`#` comment in TOML)
//! on the same line or the line directly above — each allow must be
//! justified in DESIGN.md §8.
//!
//! Zero dependencies, fully offline: a small lexer strips comments and
//! string contents and masks `#[cfg(test)]` regions; rules are
//! line-oriented token checks on the result.

pub mod diag;
pub mod rules;
pub mod source;

pub use diag::Diagnostic;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a workspace run.
#[derive(Debug)]
pub struct LintReport {
    /// Sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

/// Runs all source rules applicable to `rel_path` over `content`,
/// honouring allow directives.
pub fn lint_source(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    let sf = source::SourceFile::parse(content);
    let mut out = Vec::new();
    rules::determinism::check(rel_path, &sf, &mut out);
    rules::unit_safety::check(rel_path, &sf, &mut out);
    rules::panic_hygiene::check(rel_path, &sf, &mut out);
    out.retain(|d| !sf.allows(d.line, d.rule));
    out
}

/// Runs the manifest rule (`dep-audit`) over one `Cargo.toml`.
pub fn lint_manifest(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rules::dep_audit::check(rel_path, content, &mut out);
    out
}

/// Walks the workspace rooted at `root` and lints every `.rs` file and
/// `Cargo.toml`, skipping `target/`, VCS metadata, and the lint's own
/// fixture corpus (`**/tests/fixtures/**`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect(root, Path::new(""), &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0;
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let content = fs::read_to_string(root.join(rel))?;
        files_scanned += 1;
        if rel_str.ends_with("Cargo.toml") {
            diagnostics.extend(lint_manifest(&rel_str, &content));
        } else {
            diagnostics.extend(lint_source(&rel_str, &content));
        }
    }
    diagnostics.sort();
    diagnostics.dedup();
    Ok(LintReport {
        diagnostics,
        files_scanned,
    })
}

fn collect(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let dir = root.join(rel);
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name_str = name.to_string_lossy().into_owned();
        let child = rel.join(&name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name_str == "target" || name_str.starts_with('.') {
                continue;
            }
            if name_str == "fixtures" && rel.file_name().is_some_and(|p| p == "tests") {
                continue;
            }
            collect(root, &child, out)?;
        } else if ty.is_file() && (name_str.ends_with(".rs") || name_str == "Cargo.toml") {
            out.push(child);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_filters_source_diagnostics() {
        let src = "use std::collections::HashMap; // nomc-lint: allow(determinism)\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
    }

    #[test]
    fn diagnostics_are_rule_tagged() {
        let src = "use std::collections::HashMap;\n";
        let d = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(d[0].rule, rules::determinism::RULE);
        assert!(rules::ALL.contains(&d[0].rule));
    }
}
