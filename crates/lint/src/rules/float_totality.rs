//! Rule `float-totality`: `f64` has a *partial* order — `NaN` makes
//! `==`/`<` lie — and bit-identical reproduction means float decisions
//! must be total and explicit. In the simulation code paths (`sim`,
//! `phy`, `mac`, `core`, `experiments`) the rule flags:
//!
//! - `.partial_cmp(…)` method calls — use `total_cmp` (total over every
//!   bit pattern, including `NaN` and `-0.0`) or compare unit newtypes;
//! - `==`/`!=` comparisons where an operand is visibly `f64`: a float
//!   literal, or an identifier the item parser proved to be a raw `f64`
//!   (fn parameter, `let` binding, or same-file struct field).
//!
//! The sanctioned replacements are epsilon-free and bit-exact, so
//! every fix is behavior-preserving on non-NaN inputs (DESIGN.md §8):
//!
//! - `x == 0.0`  →  `x.abs().to_bits() == 0` (true for ±0, false for
//!   NaN — exactly IEEE `==`);
//! - `x == C` for a nonzero literal `C`  →  `x.to_bits() ==
//!   f64::to_bits(C)` (identical when `x` is produced by the same
//!   computation that produced `C`; NaN compares false either way);
//! - ordering  →  `a.total_cmp(&b)`.
//!
//! `fn partial_cmp` *definitions* (`impl PartialOrd`) are not calls and
//! are not flagged. Operands the parser cannot classify (call results,
//! parenthesised expressions) are skipped: the rule is deliberately
//! precise-over-complete, because every hit must be fixed, not allowed.

use crate::diag::Diagnostic;
use crate::parser::{Items, Token, TokenKind};
use std::collections::BTreeSet;

pub const RULE: &str = "float-totality";

const SCOPES: &[&str] = &[
    "crates/sim/src/",
    "crates/phy/src/",
    "crates/mac/src/",
    "crates/core/src/",
    "crates/experiments/src/",
];

pub fn in_scope(rel_path: &str) -> bool {
    SCOPES.iter().any(|s| rel_path.starts_with(s))
}

pub fn check(rel_path: &str, tokens: &[Token], items: &Items, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    // Identifiers the parser proved to be raw `f64`s in this file.
    let mut bare: BTreeSet<&str> = BTreeSet::new();
    let mut fields: BTreeSet<&str> = BTreeSet::new();
    for f in &items.fns {
        if f.in_test {
            continue;
        }
        for p in &f.params {
            if p.ty_is("f64") {
                bare.insert(&p.name);
            }
        }
        if let Some(body) = &f.body {
            for l in &body.lets {
                let is_f64 = match &l.ty {
                    Some(ty) => ty.len() == 1 && ty[0] == "f64",
                    None => l.float_init,
                };
                if is_f64 {
                    bare.insert(&l.name);
                }
            }
        }
    }
    for s in items.structs.iter().filter(|s| !s.in_test) {
        for field in &s.fields {
            if field.ty_is("f64") {
                fields.insert(&field.name);
            }
        }
    }
    for e in items.enums.iter().filter(|e| !e.in_test) {
        for v in &e.variants {
            for field in &v.fields {
                if field.ty_is("f64") {
                    fields.insert(&field.name);
                }
            }
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Punct {
            continue;
        }
        // `.partial_cmp(` — a method call, never the `impl PartialOrd`
        // definition (that is `fn partial_cmp`).
        if t.text == "."
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("partial_cmp"))
            && tokens.get(i + 2).is_some_and(|n| n.text == "(")
        {
            out.push(Diagnostic::new(
                rel_path,
                tokens[i + 1].line,
                RULE,
                "`.partial_cmp()` on floats is a partial order (NaN breaks it); \
                 use `total_cmp` or compare unit newtypes"
                    .to_string(),
            ));
            continue;
        }
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let left = left_operand_is_f64(tokens, i, &bare, &fields);
        let right = right_operand_is_f64(tokens, i, &bare, &fields);
        if left || right {
            out.push(Diagnostic::new(
                rel_path,
                t.line,
                RULE,
                format!(
                    "`{}` on a raw `f64` is exact-bits-sensitive and NaN-partial; \
                     compare via `to_bits()` (see DESIGN.md §8) or a unit newtype",
                    t.text
                ),
            ));
        }
    }
}

/// Classifies the operand ending just before `tokens[op]`.
fn left_operand_is_f64(
    tokens: &[Token],
    op: usize,
    bare: &BTreeSet<&str>,
    fields: &BTreeSet<&str>,
) -> bool {
    let Some(k) = op.checked_sub(1) else {
        return false;
    };
    let t = &tokens[k];
    if t.is_float_literal() {
        // Not a tuple index (`.0`): the tokenizer only gives float
        // shape to literals with their own fraction/suffix.
        return true;
    }
    if t.kind != TokenKind::Ident {
        return false;
    }
    let after_dot = k > 0 && tokens[k - 1].text == ".";
    if after_dot {
        return fields.contains(t.text.as_str());
    }
    // A bare identifier: its own token must start the operand (not a
    // path segment like `f64::NAN` — `::` before it disqualifies).
    if k > 0 && tokens[k - 1].text == "::" {
        return false;
    }
    bare.contains(t.text.as_str())
}

/// Classifies the operand starting just after `tokens[op]`.
fn right_operand_is_f64(
    tokens: &[Token],
    op: usize,
    bare: &BTreeSet<&str>,
    fields: &BTreeSet<&str>,
) -> bool {
    let mut j = op + 1;
    if tokens.get(j).is_some_and(|t| t.text == "-") {
        j += 1;
    }
    let Some(t) = tokens.get(j) else {
        return false;
    };
    if t.is_float_literal() {
        // `2.0f64.to_bits()` is a method call on the literal, not a
        // float comparison operand.
        return tokens.get(j + 1).is_none_or(|n| n.text != ".");
    }
    if t.kind != TokenKind::Ident {
        return false;
    }
    // Walk the `a.b.c` chain; reject paths (`X::Y`) and calls.
    let mut last = j;
    let mut dotted = false;
    loop {
        match tokens.get(last + 1).map(|t| t.text.as_str()) {
            Some("::") => return false,
            Some("(") => return false,
            Some(".") => {
                let Some(n) = tokens.get(last + 2) else {
                    return false;
                };
                if n.kind != TokenKind::Ident {
                    return false;
                }
                dotted = true;
                last += 2;
            }
            _ => break,
        }
    }
    let name = tokens[last].text.as_str();
    if dotted {
        fields.contains(name)
    } else {
        bare.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::source::SourceFile;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse(src);
        let items = parser::parse(&sf);
        let tokens = parser::tokenize(&sf);
        let mut out = Vec::new();
        check("crates/phy/src/fixture.rs", &tokens, &items, &mut out);
        out
    }

    #[test]
    fn flags_partial_cmp_calls() {
        let d = lint("fn f(a: f64, b: f64) -> Ordering { a.partial_cmp(&b).expect(\"finite\") }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("total_cmp"));
    }

    #[test]
    fn partial_cmp_definitions_are_not_calls() {
        let src = "impl PartialOrd for S {\n    fn partial_cmp(&self, other: &S) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn flags_float_literal_comparisons() {
        let d = lint("fn f(p: f64) -> bool { p == 0.0 }\n");
        assert_eq!(d.len(), 1);
        let d = lint("fn f(t: f64) -> bool { t != -77.0 }\n");
        assert_eq!(d.len(), 1);
        let d = lint("fn f(t: f64) -> bool { 1.5e3 == t }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn flags_known_f64_idents_and_fields() {
        let d = lint("fn f(sigma: f64, n: u64) -> bool { sigma == sigma }\n");
        assert_eq!(d.len(), 1);
        let d = lint(
            "struct M { cutoff: f64 }\nimpl M {\n    fn f(&self, x: f64) -> bool { x == self.cutoff }\n}\n",
        );
        assert_eq!(d.len(), 1);
        let d = lint("fn f() { let acc = 0.0; if acc == limit() {} }\n");
        // `limit()` is a call (skipped) but `acc` is a float-literal let.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn integer_and_unknown_comparisons_pass() {
        assert!(lint("fn f(a: u64, b: u64) -> bool { a == b && a != 3 }\n").is_empty());
        assert!(lint("fn f(s: &str) -> bool { s == \"x\" }\n").is_empty());
    }

    #[test]
    fn bits_comparisons_are_the_sanctioned_form() {
        let src = "fn f(p: f64) -> bool {\n    p.abs().to_bits() == 0 && p.to_bits() == f64::to_bits(1.0)\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn tuple_index_zero_is_not_a_float_literal() {
        // `points[0].0 != 0.0` must be flagged for the float literal on
        // the right, not misread on the left.
        let d = lint("fn f(points: &[(f64, f64)]) -> bool { points[0].0 != 0.0 }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn newtype_equality_passes() {
        let src = "struct M { sigma_db: Db }\nimpl M {\n    fn f(&self) -> bool { self.sigma_db == Db::ZERO }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(p: f64) -> bool { p == 0.5 }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn scope_covers_sim_phy_mac_core_experiments() {
        for path in [
            "crates/sim/src/medium.rs",
            "crates/phy/src/ber.rs",
            "crates/mac/src/csma.rs",
            "crates/core/src/adjustor.rs",
            "crates/experiments/src/experiments/fig06.rs",
        ] {
            assert!(in_scope(path), "{path} must be in scope");
        }
        assert!(!in_scope("crates/bench/src/harness.rs"));
    }
}
