//! Rule `unit-safety`: public functions in the physical-layer crates
//! (`phy`, `mac`, `core`, `radio`) must not take raw `f64` parameters
//! whose names carry a physical unit (`_dbm`, `_mhz`, `_secs`, `rssi`,
//! …). The workspace has `nomc-units` newtypes (`Dbm`, `Db`,
//! `Megahertz`, `SimDuration`, `Meters`, …) precisely so that a dBm
//! value cannot be passed where a dB offset is expected; raw `f64`s at
//! public API boundaries reopen that hole.
//!
//! Dimensionless `f64` parameters (probabilities, exponents, ratios)
//! are fine — the rule only fires when a `_`-separated segment of the
//! parameter name is a unit token.

use crate::diag::Diagnostic;
use crate::rules::{is_ident_at, is_ident_byte};
use crate::source::SourceFile;

pub const RULE: &str = "unit-safety";

const SCOPES: &[&str] = &[
    "crates/phy/src/",
    "crates/mac/src/",
    "crates/core/src/",
    "crates/radio/src/",
];

/// Unit vocabulary, matched against `_`-separated name segments.
const VOCAB: &[&str] = &[
    "dbm",
    "db",
    "dbi",
    "mhz",
    "khz",
    "ghz",
    "hz",
    "rssi",
    "snr",
    "sinr",
    "lqi",
    "mw",
    "milliwatts",
    "watts",
    "secs",
    "sec",
    "ms",
    "us",
    "ns",
    "millis",
    "micros",
    "nanos",
];

pub fn in_scope(rel_path: &str) -> bool {
    SCOPES.iter().any(|s| rel_path.starts_with(s))
}

pub fn check(rel_path: &str, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    // Join non-test code lines (test lines become empty) so signatures
    // spanning lines parse naturally; remember where each line starts.
    let mut text = String::new();
    let mut line_of = Vec::new(); // (byte offset of line start, 1-based line)
    for (idx, line) in sf.lines.iter().enumerate() {
        line_of.push((text.len(), idx + 1));
        if !line.in_test {
            text.push_str(&line.code);
        }
        text.push('\n');
    }
    let to_line = |offset: usize| -> usize {
        match line_of.binary_search_by_key(&offset, |&(o, _)| o) {
            Ok(i) => line_of[i].1,
            Err(i) => line_of[i - 1].1,
        }
    };

    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(rel) = text[from..].find("pub") {
        let pos = from + rel;
        from = pos + 3;
        if !is_ident_at(&text, pos, "pub") {
            continue;
        }
        let Some((fn_name, params)) = parse_pub_fn(&text, bytes, pos + 3) else {
            continue;
        };
        for param in split_top_level(params, ',') {
            let Some((pat, ty)) = split_once_top_level(param, ':') else {
                continue;
            };
            if ty.trim() != "f64" {
                continue;
            }
            let name = pat
                .trim()
                .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string();
            if name.is_empty() || name == "_" {
                continue;
            }
            let lower = name.to_ascii_lowercase();
            if lower.split('_').any(|seg| VOCAB.contains(&seg)) {
                out.push(Diagnostic::new(
                    rel_path,
                    to_line(pos),
                    RULE,
                    format!(
                        "public fn `{fn_name}` takes unit-carrying raw f64 parameter \
                         `{name}`; use the nomc-units newtype (Dbm, Db, Megahertz, \
                         SimDuration, Meters, …)"
                    ),
                ));
            }
        }
    }
}

/// From just after a `pub` keyword, parses an optional visibility
/// restriction + qualifiers + `fn name <generics> ( params )`.
/// Returns `(name, params)` or `None` if this `pub` is not a function.
fn parse_pub_fn<'a>(text: &'a str, bytes: &[u8], mut i: usize) -> Option<(&'a str, &'a str)> {
    i = skip_ws(bytes, i);
    // pub(crate), pub(in path), …
    if bytes.get(i) == Some(&b'(') {
        i = skip_group(bytes, i, b'(', b')')?;
        i = skip_ws(bytes, i);
    }
    // Qualifiers before `fn`.
    loop {
        let start = i;
        while bytes.get(i).is_some_and(|&b| is_ident_byte(b)) {
            i += 1;
        }
        let word = &text[start..i];
        match word {
            "fn" => break,
            "const" | "unsafe" | "async" | "extern" => {
                i = skip_ws(bytes, i);
                if bytes.get(i) == Some(&b'"') {
                    // extern "C"
                    i += 1;
                    while bytes.get(i).is_some_and(|&b| b != b'"') {
                        i += 1;
                    }
                    i += 1;
                    i = skip_ws(bytes, i);
                }
            }
            _ => return None, // pub struct / pub use / pub mod / …
        }
        if word == "fn" {
            break;
        }
    }
    i = skip_ws(bytes, i);
    let name_start = i;
    while bytes.get(i).is_some_and(|&b| is_ident_byte(b)) {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let name = &text[name_start..i];
    i = skip_ws(bytes, i);
    // Generics (may contain `Fn(f64) -> f64`; `->` must not close `<`).
    if bytes.get(i) == Some(&b'<') {
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => depth += 1,
                b'>' if i > 0 && bytes[i - 1] == b'-' => {}
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i = skip_ws(bytes, i);
    }
    if bytes.get(i) != Some(&b'(') {
        return None;
    }
    let end = skip_group(bytes, i, b'(', b')')?;
    Some((name, &text[i + 1..end - 1]))
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

/// From an opening delimiter at `i`, returns the index just past its
/// matching closer.
fn skip_group(bytes: &[u8], mut i: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0i32;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Splits on `sep` at bracket/angle depth 0 (`->` protects its `>`).
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b')' | b']' | b'>' => depth -= 1,
            _ if b == sep as u8 && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn split_once_top_level(s: &str, sep: char) -> Option<(&str, &str)> {
    let parts = split_top_level(s, sep);
    if parts.len() < 2 {
        return None;
    }
    let first = parts[0];
    Some((first, &s[first.len() + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse(src);
        let mut out = Vec::new();
        check("crates/phy/src/fixture.rs", &sf, &mut out);
        out
    }

    #[test]
    fn flags_unit_named_f64_params() {
        let d = lint("pub fn new(freq_mhz: f64) -> Self { Self }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("freq_mhz"));
    }

    #[test]
    fn multiline_signature_reports_fn_line() {
        let d = lint(
            "impl X {\n    pub fn set(\n        &mut self,\n        level_dbm: f64,\n    ) {}\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn dimensionless_f64_is_fine() {
        assert!(lint("pub fn ber(p: f64, exponent: f64, target: f64) -> f64 { p }\n").is_empty());
    }

    #[test]
    fn newtype_params_are_fine() {
        assert!(lint("pub fn set(level: Dbm, freq: Megahertz) {}\n").is_empty());
    }

    #[test]
    fn private_fns_are_not_public_api() {
        assert!(lint("fn helper(sigma_db: f64) {}\n").is_empty());
    }

    #[test]
    fn generic_fn_params_still_parse() {
        let d = lint("pub fn map<F: Fn(f64) -> f64>(gain_db: f64, f: F) -> f64 { f(gain_db) }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn pub_crate_counts_as_public_api() {
        assert_eq!(lint("pub(crate) fn tune(freq_mhz: f64) {}\n").len(), 1);
    }

    #[test]
    fn out_of_scope_crates_ignored() {
        let sf = SourceFile::parse("pub fn new(freq_mhz: f64) {}\n");
        let mut out = Vec::new();
        check("crates/units/src/frequency.rs", &sf, &mut out);
        assert!(out.is_empty());
    }
}
