//! Rule `unit-safety` (v2): unit-carrying quantities live behind
//! `nomc-units` newtypes (`Dbm`, `Db`, `Megahertz`, `SimDuration`, …)
//! precisely so that a dBm value cannot be passed where a dB offset is
//! expected. A raw `f64` whose *name* carries a physical unit
//! (`_dbm`, `_mhz`, `rssi`, …) reopens that hole, so across every
//! non-test crate the rule flags:
//!
//! - public `fn` parameters of type `f64` with unit-named identifiers
//!   (the v1 check, now parser-based and workspace-wide);
//! - `struct`/`enum` fields of type `f64` with unit-named identifiers —
//!   a raw field leaks through every API that exposes the struct;
//! - `let` bindings with unit-named identifiers that are explicitly
//!   `f64`-typed or initialized from a float literal.
//!
//! `crates/units/src/` itself is exempt: it is the designated raw-value
//! boundary — the newtypes must store and accept naked `f64`s
//! somewhere, and that somewhere is exactly one crate.
//!
//! Dimensionless `f64`s (probabilities, exponents, ratios) are fine —
//! the rule only fires when a `_`-separated segment of the name is a
//! unit token.

use crate::diag::Diagnostic;
use crate::parser::Items;

pub const RULE: &str = "unit-safety";

/// Unit vocabulary, matched against `_`-separated name segments.
const VOCAB: &[&str] = &[
    "dbm",
    "db",
    "dbi",
    "mhz",
    "khz",
    "ghz",
    "hz",
    "rssi",
    "snr",
    "sinr",
    "lqi",
    "mw",
    "milliwatts",
    "watts",
    "secs",
    "sec",
    "ms",
    "us",
    "ns",
    "millis",
    "micros",
    "nanos",
];

/// Whether a `_`-separated segment of `name` is a unit token.
pub fn is_unit_named(name: &str) -> bool {
    name.split('_').any(|seg| VOCAB.contains(&seg))
}

pub fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.starts_with("crates/units/src/")
}

pub fn check(rel_path: &str, items: &Items, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    for f in &items.fns {
        if f.in_test {
            continue;
        }
        if !f.vis.is_empty() {
            for p in &f.params {
                if p.ty_is("f64") && is_unit_named(&p.name) {
                    out.push(Diagnostic::new(
                        rel_path,
                        p.line,
                        RULE,
                        format!(
                            "public fn `{}` takes raw `f64` parameter `{}` carrying a \
                             unit in its name; use the matching nomc-units newtype",
                            f.name, p.name
                        ),
                    ));
                }
            }
        }
        if let Some(body) = &f.body {
            for l in &body.lets {
                let raw_f64 = match &l.ty {
                    Some(ty) => ty.len() == 1 && ty[0] == "f64",
                    None => l.float_init,
                };
                if raw_f64 && is_unit_named(&l.name) {
                    out.push(Diagnostic::new(
                        rel_path,
                        l.line,
                        RULE,
                        format!(
                            "`let {}` binds a raw `f64` carrying a unit in its name; \
                             use the matching nomc-units newtype",
                            l.name
                        ),
                    ));
                }
            }
        }
    }
    for s in &items.structs {
        if s.in_test {
            continue;
        }
        for field in &s.fields {
            if field.ty_is("f64") && is_unit_named(&field.name) {
                out.push(Diagnostic::new(
                    rel_path,
                    field.line,
                    RULE,
                    format!(
                        "field `{}.{}` is a raw `f64` carrying a unit in its name; \
                         use the matching nomc-units newtype",
                        s.name, field.name
                    ),
                ));
            }
        }
    }
    for e in &items.enums {
        if e.in_test {
            continue;
        }
        for v in &e.variants {
            for field in &v.fields {
                if field.ty_is("f64") && is_unit_named(&field.name) {
                    out.push(Diagnostic::new(
                        rel_path,
                        field.line,
                        RULE,
                        format!(
                            "field `{}::{}.{}` is a raw `f64` carrying a unit in its \
                             name; use the matching nomc-units newtype",
                            e.name, v.name, field.name
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::source::SourceFile;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let items = parser::parse(&SourceFile::parse(src));
        let mut out = Vec::new();
        check("crates/phy/src/fixture.rs", &items, &mut out);
        out
    }

    #[test]
    fn flags_unit_named_f64_params() {
        let d = lint("pub fn new(freq_mhz: f64) -> Self { Self }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("freq_mhz"));
    }

    #[test]
    fn multiline_signature_reports_param_line() {
        let d = lint(
            "impl X {\n    pub fn set(\n        &mut self,\n        level_dbm: f64,\n    ) {}\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn dimensionless_f64_is_fine() {
        assert!(lint("pub fn ber(p: f64, exponent: f64, target: f64) -> f64 { p }\n").is_empty());
    }

    #[test]
    fn newtype_params_are_fine() {
        assert!(lint("pub fn set(level: Dbm, freq: Megahertz) {}\n").is_empty());
    }

    #[test]
    fn private_fn_params_are_not_public_api() {
        assert!(lint("fn helper(sigma_db: f64) {}\n").is_empty());
    }

    #[test]
    fn generic_fn_params_still_parse() {
        let d = lint("pub fn map<F: Fn(f64) -> f64>(gain_db: f64, f: F) -> f64 { f(gain_db) }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn pub_crate_counts_as_public_api() {
        assert_eq!(lint("pub(crate) fn tune(freq_mhz: f64) {}\n").len(), 1);
    }

    #[test]
    fn struct_fields_are_covered() {
        let d = lint("pub struct Model {\n    pub sigma_db: f64,\n    pub exponent: f64,\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("Model.sigma_db"));
    }

    #[test]
    fn enum_variant_fields_are_covered() {
        let d = lint("pub enum E {\n    Cca { sensed_dbm: f64 },\n    Other(u8),\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("E::Cca.sensed_dbm"));
    }

    #[test]
    fn newtype_fields_are_fine() {
        assert!(
            lint("pub struct Model { pub sigma_db: Db, pub freq_mhz: Megahertz }\n").is_empty()
        );
    }

    #[test]
    fn unit_named_lets_are_covered() {
        let d = lint(
            "fn f() {\n    let mut recover_ms = 0.0;\n    let freq_mhz: f64 = next();\n    let total = 0.0;\n    let span_ms = elapsed();\n}\n",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn test_items_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn t(freq_mhz: f64) { let x_db = 1.0; }\n    struct S { a_dbm: f64 }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn units_crate_is_the_raw_value_boundary() {
        let items = parser::parse(&SourceFile::parse(
            "pub fn from_secs_f64(secs: f64) -> Self { Self(secs) }\npub struct D { pub secs: f64 }\n",
        ));
        let mut out = Vec::new();
        check("crates/units/src/time.rs", &items, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn all_non_test_crates_are_in_scope() {
        for path in [
            "crates/sim/src/trace.rs",
            "crates/experiments/src/sweep/report.rs",
            "crates/bench/src/harness.rs",
            "crates/topology/src/placement.rs",
        ] {
            assert!(in_scope(path), "{path} must be in scope");
        }
        assert!(!in_scope("crates/units/src/power.rs"));
        assert!(!in_scope("examples/quickstart.rs"));
    }
}
