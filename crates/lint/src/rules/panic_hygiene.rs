//! Rule `panic-hygiene`: the simulator (`crates/sim/src/`, including
//! the `runtime/` event-loop modules) executes millions of events per
//! run; a panic there aborts a whole sweep with no indication of which
//! invariant broke. The sweep supervisor
//! (`crates/experiments/src/sweep/`) and the CLI command layer are
//! held to the same bar: they are the crash-recovery and process-exit
//! machinery, where a panic destroys the typed-error contract the rest
//! of the stack relies on. Outside `#[cfg(test)]`, in-scope sources
//! must not use:
//!
//! - bare `.unwrap()` — use `.expect("…invariant…")` so the abort names
//!   the violated assumption, or return an error;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`;
//! - slice indexing with a literal index (`xs[0]`) — use `.first()` /
//!   `.get(…)` with an explicit invariant message.
//!
//! Identifier-based indexing (`nodes[id]`) is *not* flagged: the engine
//! mints every `NodeId`/link index itself, so those are in-bounds by
//! construction, and a line scanner cannot separate them from map
//! lookups anyway (see DESIGN.md §8 for the scope rationale).

use crate::diag::Diagnostic;
use crate::rules::ident_positions;
use crate::source::SourceFile;

pub const RULE: &str = "panic-hygiene";

/// Every non-test source under these prefixes is in scope — the
/// runtime decomposition made "the hot path" the whole sim crate, and
/// the sweep supervisor is the crash-recovery machinery itself: a
/// panic while journaling loses exactly the durability the journal
/// exists to provide. The results server is held to the same bar: a
/// panic in a connection handler or worker turns hostile input into a
/// denial of service, which is the attack its total parser exists to
/// survive. Prefixes keep newly added modules covered automatically.
const HOT_PATH_PREFIXES: &[&str] = &[
    "crates/sim/src/",
    "crates/experiments/src/sweep/",
    "crates/serve/src/",
];

/// Integration-style test modules inside in-scope prefixes (whole
/// files that exist only for `#[cfg(test)]`).
const EXEMPT: &[&str] = &[
    "crates/sim/src/runtime/tests.rs",
    "crates/experiments/src/sweep/tests.rs",
];

/// Files outside the hot-path prefixes that are nevertheless covered:
/// the batch runner hosts the `catch_unwind` isolation boundary (a
/// stray panic there defeats the mechanism that confines panics
/// elsewhere), the CLI command layer is the process entry point — a
/// panic there turns a reportable usage error into an abort with no
/// exit-code contract — and the same goes for the bench-guard CI gate
/// binary. The PHY lookup tables run inside every medium query, so
/// they are held to the hot-path bar like the sim crate itself.
const EXTRA: &[&str] = &[
    "crates/experiments/src/runner.rs",
    "crates/cli/src/commands.rs",
    "crates/bench/src/bin/bench_guard.rs",
    "crates/phy/src/lut.rs",
];

const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn in_scope(rel_path: &str) -> bool {
    (HOT_PATH_PREFIXES.iter().any(|p| rel_path.starts_with(p)) || EXTRA.contains(&rel_path))
        && !EXEMPT.contains(&rel_path)
}

pub fn check(rel_path: &str, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if code.contains(".unwrap()") {
            out.push(Diagnostic::new(
                rel_path,
                idx + 1,
                RULE,
                "bare `.unwrap()` in the sim hot path; use `.expect(\"…invariant…\")` \
                 or return an error"
                    .to_string(),
            ));
        }
        for &m in MACROS {
            if ident_positions(code, m)
                .iter()
                .any(|&p| code.as_bytes().get(p + m.len()) == Some(&b'!'))
            {
                out.push(Diagnostic::new(
                    rel_path,
                    idx + 1,
                    RULE,
                    format!("`{m}!` in the sim hot path; handle the case or return an error"),
                ));
            }
        }
        for literal in literal_indexes(code) {
            out.push(Diagnostic::new(
                rel_path,
                idx + 1,
                RULE,
                format!(
                    "literal slice index `[{literal}]` in the sim hot path can panic; \
                     use `.first()`/`.get({literal})` with an invariant message"
                ),
            ));
        }
    }
}

/// Finds `expr[<integer literal>]` index expressions: a `[` directly
/// following an identifier/`)`/`]`, whose bracketed content is all
/// digits (plus `_` separators).
fn literal_indexes(code: &str) -> Vec<&str> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for i in 1..bytes.len() {
        if bytes[i] != b'[' {
            continue;
        }
        let prev = bytes[i - 1];
        if !(crate::rules::is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        let Some(close) = code[i..].find(']') else {
            continue;
        };
        let inner = &code[i + 1..i + close];
        if !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit() || b == b'_') {
            out.push(inner);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse(src);
        let mut out = Vec::new();
        check("crates/sim/src/engine.rs", &sf, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_panic_and_literal_index() {
        let src = "fn f(xs: &[u64]) -> u64 {\n    let a = xs[0];\n    let b: u64 = s.parse().unwrap();\n    panic!(\"boom\");\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
        assert_eq!(d[2].line, 4);
    }

    #[test]
    fn expect_and_ident_index_are_fine() {
        let src = "fn f(xs: &[u64], i: usize) -> u64 {\n    xs[i] + *xs.first().expect(\"non-empty by construction\")\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn array_type_and_literal_array_are_not_indexes() {
        let src = "fn f() {\n    let a: [u8; 4] = [0, 1, 2, 3];\n    let b = vec![0u8];\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let x = \"1\".parse::<u64>().unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn all_sim_sources_are_in_scope() {
        for path in [
            "crates/sim/src/metrics.rs",
            "crates/sim/src/runtime/mod.rs",
            "crates/sim/src/runtime/tx.rs",
            "crates/sim/src/runtime/faults.rs",
            "crates/sim/src/runtime/shard/partition.rs",
            "crates/sim/src/runtime/shard/merge.rs",
            "crates/sim/src/runtime/shard/sync.rs",
            "crates/sim/src/runtime/snapshot.rs",
            "crates/experiments/src/sweep/checkpoint.rs",
        ] {
            let sf = SourceFile::parse("fn f() { panic!(\"x\"); }\n");
            let mut out = Vec::new();
            check(path, &sf, &mut out);
            assert_eq!(out.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn experiment_runner_and_cli_commands_are_in_scope() {
        // The isolation boundary and the CLI entry layer must stay
        // panic-clean; their `#[cfg(test)]` modules are still skipped
        // by the line scanner.
        for path in [
            "crates/experiments/src/runner.rs",
            "crates/cli/src/commands.rs",
        ] {
            let sf = SourceFile::parse("fn f() { panic!(\"x\"); }\n");
            let mut out = Vec::new();
            check(path, &sf, &mut out);
            assert_eq!(out.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn sweep_modules_are_in_scope() {
        // The crash-recovery machinery is covered by prefix, so new
        // sweep modules are picked up automatically.
        for path in [
            "crates/experiments/src/sweep/mod.rs",
            "crates/experiments/src/sweep/journal.rs",
            "crates/experiments/src/sweep/scheduler.rs",
            "crates/experiments/src/sweep/some_future_module.rs",
        ] {
            let sf = SourceFile::parse("fn f() { panic!(\"x\"); }\n");
            let mut out = Vec::new();
            check(path, &sf, &mut out);
            assert_eq!(out.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn serve_modules_are_in_scope() {
        // The results server faces hostile sockets: a panic in any of
        // its modules converts malformed input into a crash, so the
        // whole crate is covered by prefix, future modules included.
        for path in [
            "crates/serve/src/http.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/some_future_module.rs",
        ] {
            let sf = SourceFile::parse("fn f(xs: &[u8]) { xs[0].check().unwrap(); }\n");
            let mut out = Vec::new();
            check(path, &sf, &mut out);
            assert_eq!(out.len(), 2, "{path} must be checked");
        }
    }

    #[test]
    fn non_sim_and_exempt_files_are_not_checked() {
        for path in [
            "crates/mac/src/lib.rs",
            "crates/sim/src/runtime/tests.rs",
            "crates/experiments/src/sweep/tests.rs",
        ] {
            let sf = SourceFile::parse("fn f() { panic!(\"x\"); }\n");
            let mut out = Vec::new();
            check(path, &sf, &mut out);
            assert!(out.is_empty(), "{path} must not be checked");
        }
    }
}
