//! Rule `exhaustive-dispatch`: the event loop's dispatch and fault
//! handling must match the event/fault enums *exhaustively by name*.
//! A `_ =>` (or bare-binding) catch-all arm compiles fine when a new
//! `Event` variant is added — and silently drops the new event class,
//! which is precisely the failure mode that turns an extended simulator
//! into a subtly wrong one. Without the wildcard, adding a variant is a
//! compile error at every dispatch site, so the handling decision is
//! forced at build time.
//!
//! Scope: the files that own event/fault control flow
//! (`sim/src/runtime/dispatch.rs`, `sim/src/runtime/faults.rs`, the
//! shard merger `sim/src/runtime/shard/merge.rs`, whose
//! `BoundaryEvent`/`Event` replay matches must cover every variant a
//! worker can ship, and the snapshot codec
//! `sim/src/runtime/snapshot.rs`, whose `Event` wire serialization must
//! name every variant or a new event kind silently vanishes from
//! checkpoints, plus the results server's job lifecycle
//! `serve/src/jobs.rs`, whose `JobEvent` transition table must
//! enumerate every state/event pair or a new lifecycle event silently
//! becomes a no-op), and only `match`es whose arms mention an
//! event/fault enum (an `…Event::`/`…Fault…::` path) — matches over
//! line counts or channel indices in the same files are untouched.

use crate::diag::Diagnostic;
use crate::parser::{Items, MatchExpr};

pub const RULE: &str = "exhaustive-dispatch";

/// The files owning event/fault control flow.
const FILES: &[&str] = &[
    "crates/sim/src/runtime/dispatch.rs",
    "crates/sim/src/runtime/faults.rs",
    "crates/sim/src/runtime/shard/merge.rs",
    "crates/sim/src/runtime/snapshot.rs",
    "crates/serve/src/jobs.rs",
];

pub fn in_scope(rel_path: &str) -> bool {
    FILES.contains(&rel_path)
}

pub fn check(rel_path: &str, items: &Items, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    for f in &items.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        for m in &body.matches {
            if !is_event_match(m) {
                continue;
            }
            for arm in &m.arms {
                if arm.is_catch_all() {
                    out.push(Diagnostic::new(
                        rel_path,
                        arm.line,
                        RULE,
                        format!(
                            "catch-all arm `{}` in an event/fault dispatch match; name \
                             every variant so new event kinds fail the build instead \
                             of being silently dropped",
                            arm.pattern.join(" "),
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether any arm pattern references an event/fault enum variant path
/// (`Event::…`, `MacEvent::…`, `FaultKind::…`).
fn is_event_match(m: &MatchExpr) -> bool {
    let watched = |toks: &[String]| {
        toks.windows(2)
            .any(|w| w[1] == "::" && (w[0].ends_with("Event") || w[0].contains("Fault")))
    };
    m.arms.iter().any(|a| watched(&a.pattern)) || watched(&m.scrutinee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::source::SourceFile;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        let items = parser::parse(&SourceFile::parse(src));
        let mut out = Vec::new();
        check(path, &items, &mut out);
        out
    }

    #[test]
    fn exhaustive_event_match_passes() {
        let src = "fn dispatch(ev: Event) {\n    match ev {\n        Event::TxStart(t) => tx(t),\n        Event::TxEnd { id } => end(id),\n        Event::NodeDown(n) | Event::NodeUp(n) => fault(n),\n    }\n}\n";
        assert!(lint("crates/sim/src/runtime/dispatch.rs", src).is_empty());
    }

    #[test]
    fn wildcard_arm_is_flagged() {
        let src = "fn dispatch(ev: Event) {\n    match ev {\n        Event::TxStart(t) => tx(t),\n        _ => {}\n    }\n}\n";
        let d = lint("crates/sim/src/runtime/dispatch.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("catch-all"));
    }

    #[test]
    fn bare_binding_arm_is_flagged() {
        let src = "fn handle(ev: Event) {\n    match ev {\n        Event::NodeDown(n) => down(n),\n        other => ignore(other),\n    }\n}\n";
        let d = lint("crates/sim/src/runtime/faults.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn guarded_wildcard_is_still_a_catch_all() {
        let src = "fn f(ev: Event) {\n    match ev {\n        Event::TxStart(t) => tx(t),\n        e if quiet(&e) => {}\n    }\n}\n";
        assert_eq!(lint("crates/sim/src/runtime/dispatch.rs", src).len(), 1);
    }

    #[test]
    fn non_event_matches_may_use_wildcards() {
        let src =
            "fn f(n: u8) -> u8 {\n    match n {\n        0 => 1,\n        _ => 0,\n    }\n}\n";
        assert!(lint("crates/sim/src/runtime/dispatch.rs", src).is_empty());
    }

    #[test]
    fn shard_merge_boundary_event_wildcard_is_flagged() {
        // The sharded runtime's replay match dispatches on
        // BoundaryEvent — its name ends in "Event" precisely so this
        // rule watches it; a wildcard would silently drop a newly added
        // boundary-record kind at the merge seam.
        let src = "fn replay(ev: BoundaryEvent) {\n    match ev {\n        BoundaryEvent::Popped(e) => pop(e),\n        _ => {}\n    }\n}\n";
        let d = lint("crates/sim/src/runtime/shard/merge.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("catch-all"));
    }

    #[test]
    fn snapshot_codec_event_wildcard_is_flagged() {
        // The snapshot wire codec serializes `Event` variant by
        // variant; a wildcard arm would let a newly added event kind
        // vanish from checkpoints instead of failing the build.
        let src = "fn encode(ev: Event) -> Json {\n    match ev {\n        Event::TxStart(n) => tag(n),\n        _ => Json::Null,\n    }\n}\n";
        let d = lint("crates/sim/src/runtime/snapshot.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("catch-all"));
    }

    #[test]
    fn serve_job_lifecycle_wildcard_is_flagged() {
        // The results server's job state machine matches on
        // (JobState, JobEvent) pairs; a wildcard arm would let a newly
        // added lifecycle event silently become a no-op transition.
        let src = "fn apply(s: &JobState, ev: &JobEvent) {\n    match (s, ev) {\n        (JobState::Queued, JobEvent::Start { total }) => run(total),\n        _ => {}\n    }\n}\n";
        let d = lint("crates/serve/src/jobs.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("catch-all"));
    }

    #[test]
    fn other_files_are_out_of_scope() {
        let src = "fn f(ev: Event) {\n    match ev {\n        Event::TxStart(t) => tx(t),\n        _ => {}\n    }\n}\n";
        assert!(lint("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(ev: Event) { match ev { Event::TxStart(_) => {}, _ => {} } }\n}\n";
        assert!(lint("crates/sim/src/runtime/dispatch.rs", src).is_empty());
    }
}
