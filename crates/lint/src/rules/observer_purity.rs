//! Rule `observer-purity`: the sim runtime's non-perturbation guarantee
//! — attaching a `SimObserver` sink never changes the event stream —
//! is only testable if observers cannot mutate anything but themselves
//! through the `&mut self` the engine hands them. Interior mutability
//! (`Cell`, `RefCell`, `Mutex`, `RwLock`, raw atomics, lazy cells)
//! inside an observer would let a `&self` callback smuggle state
//! writes past that contract, and shared-`&mut` side channels in the
//! callback signatures would let one sink perturb another. For every
//! `impl SimObserver for X` the rule therefore checks:
//!
//! - `X`'s fields (the struct must be declared in the same file so the
//!   parser can see them) contain no interior-mutability type;
//! - every callback receiver is `&self` or `&mut self` — never
//!   by-value or `self: Box<Self>`;
//! - no callback takes a `&mut` *non-receiver* parameter: mutation is
//!   confined to the sink itself.

use crate::diag::Diagnostic;
use crate::parser::{FnItem, Items};

pub const RULE: &str = "observer-purity";

/// The observer trait whose impls are audited.
const TRAIT: &str = "SimObserver";

/// Interior-mutability types that would break the purity contract.
const BANNED_TYPES: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "OnceLock",
    "LazyLock",
    "Mutex",
    "RwLock",
];

pub fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

pub fn check(rel_path: &str, items: &Items, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    for im in &items.impls {
        if im.in_test || im.trait_name.as_deref() != Some(TRAIT) {
            continue;
        }
        let self_name = im.self_ty_name();
        match items.structs.iter().find(|s| s.name == self_name) {
            Some(st) => {
                for field in &st.fields {
                    if let Some(banned) = field
                        .ty
                        .iter()
                        .find(|t| BANNED_TYPES.contains(&t.as_str()) || t.starts_with("Atomic"))
                    {
                        out.push(Diagnostic::new(
                            rel_path,
                            field.line,
                            RULE,
                            format!(
                                "`{self_name}` implements `{TRAIT}` but field `{}` \
                                 contains `{banned}`; interior mutability lets a \
                                 sink bypass the &mut-self purity contract",
                                display_name(&field.name),
                            ),
                        ));
                    }
                }
            }
            None => out.push(Diagnostic::new(
                rel_path,
                im.line,
                RULE,
                format!(
                    "`impl {TRAIT} for {self_name}` but `{self_name}` is not declared \
                     in this file; declare the sink next to its impl so its fields \
                     can be purity-checked"
                ),
            )),
        }
        for f in &im.fns {
            check_callback(rel_path, self_name, f, out);
        }
    }
}

fn check_callback(rel_path: &str, self_name: &str, f: &FnItem, out: &mut Vec<Diagnostic>) {
    match &f.receiver {
        Some(recv) => {
            // `&self` / `&mut self` (with optional lifetime) are the
            // only pure shapes; by-value or `self: Box<Self>` moves the
            // sink out of the engine's control.
            if recv.first().map(String::as_str) != Some("&") {
                out.push(Diagnostic::new(
                    rel_path,
                    f.line,
                    RULE,
                    format!(
                        "`{self_name}::{}` takes `{}`; {TRAIT} callbacks must borrow \
                         the sink (`&self`/`&mut self`)",
                        f.name,
                        recv.join(" "),
                    ),
                ));
            }
        }
        None => out.push(Diagnostic::new(
            rel_path,
            f.line,
            RULE,
            format!(
                "`{self_name}::{}` has no receiver; {TRAIT} callbacks must take \
                 `&self`/`&mut self`",
                f.name
            ),
        )),
    }
    for p in &f.params {
        if p.ty.first().map(String::as_str) == Some("&")
            && p.ty.get(1).map(String::as_str) == Some("mut")
        {
            out.push(Diagnostic::new(
                rel_path,
                p.line,
                RULE,
                format!(
                    "`{self_name}::{}` takes `&mut` parameter `{}`; mutation must be \
                     confined to the sink itself (payloads are `&`)",
                    f.name, p.name
                ),
            ));
        }
    }
}

fn display_name(name: &str) -> &str {
    if name.is_empty() {
        "<tuple field>"
    } else {
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::source::SourceFile;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let items = parser::parse(&SourceFile::parse(src));
        let mut out = Vec::new();
        check("crates/sim/src/runtime/sinks.rs", &items, &mut out);
        out
    }

    #[test]
    fn pure_sink_passes() {
        let src = "pub struct Metrics { count: u64, window: Vec<f64> }\nimpl SimObserver for Metrics {\n    fn on_event(&mut self, ev: &Event) { self.count += 1; }\n    fn wants_trace(&self) -> bool { false }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn interior_mutability_fields_are_flagged() {
        let src = "struct Sneaky {\n    hits: Cell<u64>,\n    buf: RefCell<Vec<u8>>,\n    n: AtomicU64,\n}\nimpl SimObserver for Sneaky {\n    fn on_event(&mut self) {}\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("Cell"));
        assert!(d[2].message.contains("Atomic"));
    }

    #[test]
    fn nested_interior_mutability_is_flagged() {
        let src = "struct S { state: Arc<Mutex<u64>> }\nimpl SimObserver for S { fn on_event(&mut self) {} }\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Mutex"));
    }

    #[test]
    fn struct_declared_elsewhere_is_flagged() {
        let d = lint("impl SimObserver for Remote { fn on_event(&mut self) {} }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not declared in this file"));
    }

    #[test]
    fn by_value_receiver_is_flagged() {
        let src = "struct S { n: u64 }\nimpl SimObserver for S {\n    fn on_run_end(self) {}\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("borrow the sink"));
    }

    #[test]
    fn mut_payload_params_are_flagged() {
        let src = "struct S { n: u64 }\nimpl SimObserver for S {\n    fn on_event(&mut self, ev: &mut Event) {}\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("&mut"));
    }

    #[test]
    fn other_impls_are_not_audited() {
        let src = "struct S { hits: Cell<u64> }\nimpl OtherTrait for S { fn f(&mut self, x: &mut u8) {} }\nimpl S { fn g(&mut self, x: &mut u8) { *x = 1; } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_impls_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    struct T { c: Cell<u64> }\n    impl SimObserver for T { fn on_event(&mut self) {} }\n}\n";
        assert!(lint(src).is_empty());
    }
}
