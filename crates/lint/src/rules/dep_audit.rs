//! Rule `dep-audit`: the workspace is hermetic — every dependency is an
//! in-tree `nomc-*` path crate, so the whole CI gate runs offline and
//! results never shift under a registry update. This rule replaces the
//! old `cargo tree | grep` shell audit in `ci.sh`: it scans every
//! `Cargo.toml` and flags any dependency that is not a `nomc-*` crate
//! resolved by `path`/`workspace`. In a path-only workspace the
//! manifest graph *is* the full dependency graph, so this is equivalent
//! to the `cargo tree` check while needing no cargo invocation.
//!
//! The escape hatch is a TOML comment: `# nomc-lint: allow(dep-audit)`
//! on the dependency line or the line above.

use crate::diag::Diagnostic;
use crate::source::{parse_directive, Directive};

pub const RULE: &str = "dep-audit";

/// Raw findings, *before* allow-directive suppression — the pipeline in
/// the crate root applies [`directives`] so consumption is accounted
/// (a `# nomc-lint: allow(dep-audit)` that suppresses nothing is a
/// `dead-allow` error like any other).
pub fn check(rel_path: &str, content: &str, out: &mut Vec<Diagnostic>) {
    let mut section = String::new();
    for (idx, raw) in content.lines().enumerate() {
        let (code, _comment) = split_toml_comment(raw);
        let t = code.trim();
        if t.starts_with('[') {
            section = t.trim_matches(['[', ']']).trim().to_string();
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((lhs, rhs)) = t.split_once('=') else {
            continue;
        };
        let key = lhs.trim().trim_matches('"');
        // Dotted keys: `nomc-units.workspace = true`.
        let (name, dotted) = match key.split_once('.') {
            Some((n, d)) => (n, Some(d)),
            None => (key, None),
        };
        if name.is_empty() {
            continue;
        }
        let rhs = rhs.trim();
        let in_tree_shape = rhs.contains("path")
            || rhs.contains("workspace")
            || matches!(dotted, Some("path") | Some("workspace"));
        if !name.starts_with("nomc-") {
            out.push(Diagnostic::new(
                rel_path,
                idx + 1,
                RULE,
                format!(
                    "external dependency `{name}`; the workspace is hermetic — only \
                     in-tree nomc-* path crates are allowed"
                ),
            ));
        } else if !in_tree_shape {
            out.push(Diagnostic::new(
                rel_path,
                idx + 1,
                RULE,
                format!(
                    "dependency `{name}` is not resolved by path/workspace; registry \
                     and git sources are forbidden in the hermetic workspace"
                ),
            ));
        }
    }
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// The allow directives of a TOML manifest (`# nomc-lint: allow(…)`
/// comments), with the same coverage shape as Rust sources: a trailing
/// directive covers its own line; a pure comment line covers itself
/// and the next line.
pub fn directives(content: &str) -> Vec<Directive> {
    let mut out = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let (code, comment) = split_toml_comment(raw);
        let Some(rules) = parse_directive(comment) else {
            continue;
        };
        let at = idx + 1;
        let covers = if code.trim().is_empty() {
            vec![at, at + 1]
        } else {
            vec![at]
        };
        out.push(Directive {
            line: at,
            rules,
            covers,
        });
    }
    out
}

/// Splits a TOML line into (code, comment) at the first `#` outside a
/// quoted string.
fn split_toml_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return (&line[..i], &line[i + 1..]),
            _ => {}
        }
    }
    (line, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(toml: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check("crates/x/Cargo.toml", toml, &mut out);
        out
    }

    #[test]
    fn registry_and_git_deps_are_flagged() {
        let toml = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\ntokio = { git = \"https://example\" }\n";
        let d = lint(toml);
        assert_eq!(d.len(), 3);
        assert!(d[0].message.contains("serde"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn nomc_path_and_workspace_deps_pass() {
        let toml = "[dependencies]\nnomc-units.workspace = true\nnomc-json = { path = \"../json\" }\n\n[dev-dependencies]\nnomc-rngcore = { workspace = true }\n";
        assert!(lint(toml).is_empty());
    }

    #[test]
    fn nomc_named_registry_dep_is_flagged() {
        let d = lint("[dependencies]\nnomc-extra = \"1.0\"\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("path/workspace"));
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let toml = "[package]\nname = \"serde\"\nversion = \"1.0\"\n\n[features]\nrand = []\n";
        assert!(lint(toml).is_empty());
    }

    #[test]
    fn workspace_dependencies_section_is_audited() {
        let d = lint("[workspace.dependencies]\nserde = { version = \"1\" }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn toml_directives_are_extracted_with_coverage() {
        let toml = "[dependencies]\n# nomc-lint: allow(dep-audit)\nserde = \"1.0\"\nrand = \"0.8\" # nomc-lint: allow(dep-audit)\n";
        let d = directives(toml);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].covers, vec![2, 3]);
        assert_eq!(d[1].covers, vec![4]);
        // Raw findings ignore the directives; the pipeline suppresses.
        assert_eq!(lint(toml).len(), 2);
    }
}
