//! Rule `determinism`: the report-path crates (`sim`, `mac`, `core`,
//! `experiments`, and the results server `serve`, whose cache dedup
//! and crash recovery both assume byte-identical reports) must stay
//! bit-reproducible for a given scenario + seed — that is what makes
//! the Fig. 4 byte-identical metrics-JSON regression meaningful.
//! Three leak classes are banned there:
//!
//! 1. hash-order containers (`HashMap`/`HashSet`/`RandomState`), whose
//!    iteration order is randomized per process;
//! 2. wall-clock reads (`Instant`, `SystemTime`) — simulated time comes
//!    from `SimTime` only;
//! 3. randomness sources other than `nomc_rngcore` (`thread_rng`,
//!    `OsRng`, `getrandom`, the `rand` crate), which are not seeded from
//!    the scenario.

use crate::diag::Diagnostic;
use crate::rules::ident_positions;
use crate::source::SourceFile;

pub const RULE: &str = "determinism";

const SCOPES: &[&str] = &[
    "crates/sim/src/",
    "crates/mac/src/",
    "crates/core/src/",
    "crates/experiments/src/",
    "crates/serve/src/",
];

const BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "hash-order container: iteration order is randomized and can leak into results; \
         use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "hash-order container: iteration order is randomized and can leak into results; \
         use BTreeSet or a sorted Vec",
    ),
    (
        "RandomState",
        "randomized hasher state; report-path crates must be seed-deterministic",
    ),
    (
        "Instant",
        "wall-clock read; report-path crates must derive all times from SimTime",
    ),
    (
        "SystemTime",
        "wall-clock read; report-path crates must derive all times from SimTime",
    ),
    (
        "thread_rng",
        "non-nomc-rngcore randomness; use a nomc_rngcore generator seeded from the scenario",
    ),
    (
        "ThreadRng",
        "non-nomc-rngcore randomness; use a nomc_rngcore generator seeded from the scenario",
    ),
    (
        "OsRng",
        "non-nomc-rngcore randomness; use a nomc_rngcore generator seeded from the scenario",
    ),
    (
        "getrandom",
        "non-nomc-rngcore randomness; use a nomc_rngcore generator seeded from the scenario",
    ),
];

pub fn in_scope(rel_path: &str) -> bool {
    SCOPES.iter().any(|s| rel_path.starts_with(s))
}

pub fn check(rel_path: &str, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_scope(rel_path) {
        return;
    }
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(word, why) in BANNED {
            if !ident_positions(&line.code, word).is_empty() {
                out.push(Diagnostic::new(
                    rel_path,
                    idx + 1,
                    RULE,
                    format!("`{word}`: {why}"),
                ));
            }
        }
        // The `rand` crate by path (`rand::…`): identifier followed by `::`.
        for pos in ident_positions(&line.code, "rand") {
            if line.code[pos + 4..].trim_start().starts_with("::") {
                out.push(Diagnostic::new(
                    rel_path,
                    idx + 1,
                    RULE,
                    "`rand::` path: non-nomc-rngcore randomness; \
                     use a nomc_rngcore generator seeded from the scenario"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse(src);
        let mut out = Vec::new();
        check(path, &sf, &mut out);
        out
    }

    #[test]
    fn flags_hash_containers_in_scope() {
        let d = lint(
            "crates/sim/src/engine.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, RULE);
    }

    #[test]
    fn out_of_scope_paths_are_ignored() {
        assert!(lint("crates/bench/src/harness.rs", "let t = Instant::now();\n").is_empty());
    }

    #[test]
    fn shard_runtime_is_in_scope() {
        // The sharded merge seam must stay hash-order free: a HashMap
        // in the TxId remapper would make merged ids depend on hashing.
        for path in [
            "crates/sim/src/runtime/shard/partition.rs",
            "crates/sim/src/runtime/shard/merge.rs",
            "crates/sim/src/runtime/shard/sync.rs",
        ] {
            let d = lint(path, "use std::collections::HashMap;\n");
            assert_eq!(d.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn serve_sources_are_in_scope() {
        // The results server deduplicates jobs by report bytes and
        // re-serves cached reports byte-identically, so the same
        // determinism bans apply: a wall-clock read anywhere outside
        // its accounted deadline module is a bug.
        for path in [
            "crates/serve/src/server.rs",
            "crates/serve/src/jobs.rs",
            "crates/serve/src/deadline.rs",
        ] {
            let d = lint(path, "let t = Instant::now();\n");
            assert_eq!(d.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn snapshot_and_checkpoint_layers_are_in_scope() {
        // The snapshot codec and the sweep checkpoint store sit on the
        // byte-identity path: hash-order or wall-clock leaks there
        // would make a resumed run diverge from an uninterrupted one.
        for path in [
            "crates/sim/src/runtime/snapshot.rs",
            "crates/experiments/src/sweep/checkpoint.rs",
        ] {
            let d = lint(path, "let t = Instant::now();\n");
            assert_eq!(d.len(), 1, "{path} must be checked");
        }
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(lint("crates/mac/src/engine.rs", src).is_empty());
    }

    #[test]
    fn rand_path_needs_double_colon() {
        assert!(!lint("crates/sim/src/engine.rs", "let x = rand::random();\n").is_empty());
        assert!(lint("crates/sim/src/engine.rs", "let rand = 3; f(rand);\n").is_empty());
    }

    #[test]
    fn prose_and_strings_do_not_trip() {
        let src = "// a HashMap in a comment\nlet s = \"HashMap\";\n";
        assert!(lint("crates/core/src/lib.rs", src).is_empty());
    }
}
