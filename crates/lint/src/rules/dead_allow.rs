//! Rule `dead-allow`: the `// nomc-lint: allow(rule)` escape hatch is
//! tolerable only while its inventory is honest. A directive that
//! suppresses *zero* diagnostics is dead weight — usually a leftover
//! from a fixed violation — and silently widens the hole for the next
//! edit on that line. The lint pipeline therefore accounts for every
//! directive: each `(directive, rule)` pair must consume at least one
//! diagnostic, and unconsumed pairs (including unknown rule names,
//! which can never consume anything) are reported *as errors under
//! this rule id*.
//!
//! `dead-allow` diagnostics are themselves unsuppressible: they are
//! produced after allow accounting, so `allow(dead-allow)` never
//! matches anything — and is thus reported dead, which is the point.
//!
//! The detection logic lives in the crate root's pipeline (it needs
//! the full diagnostic set *before* suppression); this module owns the
//! rule id and message shapes so they stay next to the other rules.

pub const RULE: &str = "dead-allow";

/// Message for a directive rule that suppressed nothing.
pub fn dead_message(rule: &str) -> String {
    format!(
        "`allow({rule})` suppresses no `{rule}` diagnostic; delete the stale \
         directive (fixed violations must not leave their escape hatch behind)"
    )
}

/// Message for a directive naming a rule id that does not exist.
pub fn unknown_rule_message(rule: &str) -> String {
    format!(
        "`allow({rule})` names an unknown rule; see `nomc-lint --list-rules` \
         for valid rule ids"
    )
}
