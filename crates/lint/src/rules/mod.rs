//! The rule families. Each rule exposes a stable id, a scope predicate
//! over workspace-relative paths, and a `check` that appends
//! [`crate::Diagnostic`]s.

pub mod dead_allow;
pub mod dep_audit;
pub mod determinism;
pub mod exhaustive_dispatch;
pub mod float_totality;
pub mod observer_purity;
pub mod panic_hygiene;
pub mod unit_safety;

/// All rule ids, for `--list-rules` and allow-directive validation.
pub const ALL: &[&str] = &[
    determinism::RULE,
    unit_safety::RULE,
    panic_hygiene::RULE,
    dep_audit::RULE,
    float_totality::RULE,
    observer_purity::RULE,
    exhaustive_dispatch::RULE,
    dead_allow::RULE,
];

/// True when `code[pos..]` starts with `word` as a whole identifier
/// (neither side continues an identifier).
pub(crate) fn is_ident_at(code: &str, pos: usize, word: &str) -> bool {
    let bytes = code.as_bytes();
    let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let after = pos + word.len();
    let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
    before_ok && after_ok
}

/// Byte positions where `word` occurs as a whole identifier in `code`.
pub(crate) fn ident_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        if is_ident_at(code, pos, word) {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_matching_respects_boundaries() {
        assert_eq!(ident_positions("HashMap::new()", "HashMap"), vec![0]);
        assert!(ident_positions("MyHashMap::new()", "HashMap").is_empty());
        assert!(ident_positions("HashMapLike", "HashMap").is_empty());
        assert_eq!(ident_positions("a HashMap b HashMap", "HashMap").len(), 2);
    }
}
