//! The diagnostic type shared by every rule.

use std::fmt;

/// One finding, anchored to a file and 1-based line.
///
/// The `Display` form is the machine-readable format CI consumes:
/// `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`determinism`, `unit-safety`, …).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_machine_readable() {
        let d = Diagnostic::new("crates/sim/src/engine.rs", 42, "determinism", "msg".into());
        assert_eq!(
            d.to_string(),
            "crates/sim/src/engine.rs:42: determinism: msg"
        );
    }
}
