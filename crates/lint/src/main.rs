//! The `nomc-lint` binary: lints workspace trees and single files,
//! printing diagnostics in the machine-readable
//! `file:line: rule-id: message` format or as a JSON report.
//!
//! Usage: `nomc-lint [--list-rules] [--format text|json] [PATH ...]`
//! (paths default to `.`; directories are walked, files are linted
//! directly).
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 usage error or
//! missing/unreadable path. IO failures are *hard* errors reported as
//! typed `io` diagnostics — a glob that matches nothing must never
//! pass the gate silently.

use nomc_lint::{Diagnostic, LintReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Pseudo-rule id for path/IO failures. Not a lint rule (it has no
/// allow escape and never appears in `--list-rules`): it exists so IO
/// failures surface in the same typed diagnostic stream CI parses.
const IO_RULE: &str = "io";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in nomc_lint::rules::ALL {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: nomc-lint [--list-rules] [--format text|json] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "nomc-lint: --format expects `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".to_string(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            _ if arg.starts_with('-') => {
                eprintln!("nomc-lint: unknown option `{arg}`");
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }

    let mut report = LintReport {
        diagnostics: Vec::new(),
        allows: Vec::new(),
        files_scanned: 0,
    };
    let mut io_error = false;
    for path in &paths {
        if let Err(d) = lint_path(path, &mut report) {
            io_error = true;
            report.diagnostics.push(d);
        }
    }
    report.diagnostics.sort();
    report.diagnostics.dedup();
    report.allows.sort();
    report.allows.dedup();

    if json {
        println!("{}", report.to_json().dump_pretty());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    if io_error {
        eprintln!("nomc-lint: aborted by path error(s)");
        return ExitCode::from(2);
    }
    if report.diagnostics.is_empty() {
        eprintln!("nomc-lint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "nomc-lint: {} diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Lints one CLI path (directory walk or single file) into `report`.
/// A missing or unreadable path is a typed `io` diagnostic, not a
/// silent skip.
fn lint_path(path: &Path, report: &mut LintReport) -> Result<(), Diagnostic> {
    let display = path.display().to_string();
    if path.is_dir() {
        let sub = nomc_lint::lint_workspace(path)
            .map_err(|e| Diagnostic::new(&display, 0, IO_RULE, format!("cannot walk: {e}")))?;
        report.diagnostics.extend(sub.diagnostics);
        report.allows.extend(sub.allows);
        report.files_scanned += sub.files_scanned;
        return Ok(());
    }
    let content = std::fs::read_to_string(path)
        .map_err(|e| Diagnostic::new(&display, 0, IO_RULE, format!("cannot read: {e}")))?;
    let rel = display.replace('\\', "/");
    let file = if rel.ends_with("Cargo.toml") {
        nomc_lint::lint_manifest_full(&rel, &content)
    } else {
        nomc_lint::lint_source_full(&rel, &content)
    };
    report.diagnostics.extend(file.diagnostics);
    report.allows.extend(file.allows);
    report.files_scanned += 1;
    Ok(())
}
