//! The `nomc-lint` binary: walks a workspace and prints diagnostics in
//! the machine-readable `file:line: rule-id: message` format.
//!
//! Usage: `nomc-lint [--list-rules] [ROOT]` (ROOT defaults to `.`).
//! Exit status: 0 clean, 1 diagnostics found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for rule in nomc_lint::rules::ALL {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: nomc-lint [--list-rules] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("nomc-lint: unknown option `{arg}`");
                return ExitCode::from(2);
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("nomc-lint: at most one ROOT argument is accepted");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match nomc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nomc-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        eprintln!("nomc-lint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "nomc-lint: {} diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
