//! The item parser: token stream → items.
//!
//! The v1 rules were line-oriented token checks; the flow-aware v2
//! rules (float-totality, observer-purity, exhaustive-dispatch,
//! unit-safety over fields and lets) need *structure*: which `f64`
//! names a function binds, which struct a `SimObserver` impl covers,
//! whether a `match` over the event enum has a wildcard arm. This
//! module provides exactly that much structure and no more — an item
//! grammar (`fn` signatures with params/receivers/return types,
//! `struct`/`enum` fields and variants, `impl` blocks with trait
//! names, `trait`/`mod` bodies, `use` trees, plus `let` bindings and
//! `match` arms inside function bodies) without an expression-level
//! AST.
//!
//! The parser is **total**: it never fails. Unrecognized tokens are
//! skipped, so macro-heavy or exotic code degrades to "fewer items",
//! never to a parse error. It operates on the lexed
//! [`crate::source::SourceFile`] view, so comments, string contents,
//! and char literals are already blanked — a raw string containing
//! `fn bomb()` cannot produce a phantom item.

use crate::source::SourceFile;
use std::fmt::Write as _;

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token text. Operators that the item grammar must not split
    /// (`::`, `->`, `=>`, `==`, `!=`, `<=`, `>=`) are single tokens;
    /// every other punctuation is one character.
    pub text: String,
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// True when the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, with optional suffix).
    Number,
    /// A (blanked) string literal.
    Str,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator.
    Punct,
}

impl Token {
    /// Whether this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this numeric literal has float shape: a fraction, an
    /// exponent, or an explicit `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number || self.text.starts_with("0x") {
            return false;
        }
        if self.text.contains('.') || self.text.ends_with("f32") || self.text.ends_with("f64") {
            return true;
        }
        // Exponent form (`1e9`, `2E-3`): `e`/`E` followed by an
        // optional sign and a digit. Integer suffixes also contain an
        // `e` (`0usize`, `3u8.pow` receivers) and must not match.
        let b = self.text.as_bytes();
        (0..b.len()).any(|i| {
            b[i].eq_ignore_ascii_case(&b'e') && {
                let j = if matches!(b.get(i + 1), Some(b'+' | b'-')) {
                    i + 2
                } else {
                    i + 1
                };
                matches!(b.get(j), Some(d) if d.is_ascii_digit())
            }
        })
    }
}

/// Tokenizes the code view of `sf` (comments and string contents are
/// already blanked by the lexer).
pub fn tokenize(sf: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in sf.lines.iter().enumerate() {
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            let start = i;
            if b.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            let (kind, end) = if b.is_ascii_alphabetic() || b == b'_' {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                (TokenKind::Ident, j)
            } else if b.is_ascii_digit() {
                (TokenKind::Number, scan_number(bytes, i))
            } else if b == b'"' {
                // Strings are blanked; scan to the closing quote on
                // this line (multi-line strings degrade to one token).
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                (TokenKind::Str, (j + 1).min(bytes.len()))
            } else if b == b'\'' && i + 1 < bytes.len() && is_ident_byte(bytes[i + 1]) {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                (TokenKind::Lifetime, j)
            } else {
                (TokenKind::Punct, i + punct_len(bytes, i))
            };
            i = end;
            out.push(Token {
                text: line.code[start..end].to_string(),
                kind,
                line: idx + 1,
                in_test: line.in_test,
            });
        }
    }
    out
}

/// Length of the punctuation token starting at `i` (joins the
/// operators the item grammar must treat atomically).
fn punct_len(bytes: &[u8], i: usize) -> usize {
    let two = |a: u8, b: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b);
    if two(b':', b':')
        || two(b'-', b'>')
        || two(b'=', b'>')
        || two(b'=', b'=')
        || two(b'!', b'=')
        || two(b'<', b'=')
        || two(b'>', b'=')
        || two(b'.', b'.')
    {
        2
    } else {
        1
    }
}

fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    let digits = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b')) {
        i += 2;
        while i < bytes.len() && digits(bytes[i]) {
            i += 1;
        }
        return i;
    }
    while i < bytes.len() && digits(bytes[i]) {
        i += 1;
    }
    // Fraction: `.` only when followed by a digit (so `1..2`, `xs[0].f()`
    // and tuple indexing keep their own tokens).
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < bytes.len() && digits(bytes[i]) {
            i += 1;
        }
    }
    // Exponent sign (`1e-9`): the `e` was consumed by the suffix scan.
    if i < bytes.len()
        && (bytes[i] == b'+' || bytes[i] == b'-')
        && bytes[i - 1].eq_ignore_ascii_case(&b'e')
    {
        i += 1;
        while i < bytes.len() && digits(bytes[i]) {
            i += 1;
        }
    }
    i
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// One function parameter (or receiver).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The binding name (last identifier of the pattern), empty for
    /// `_` or purely structural patterns.
    pub name: String,
    /// Type tokens, space-joined (`& mut R`, `f64`).
    pub ty: Vec<String>,
    /// 1-based source line of the parameter.
    pub line: usize,
}

impl Param {
    /// The type as a display string.
    pub fn ty_text(&self) -> String {
        self.ty.join(" ")
    }

    /// Whether the declared type is exactly `ty`.
    pub fn ty_is(&self, ty: &str) -> bool {
        self.ty.len() == 1 && self.ty[0] == ty
    }
}

/// A `let` binding inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct LetBinding {
    /// Binding name (simple `let name` / `let mut name` only;
    /// destructuring patterns are not recorded).
    pub name: String,
    /// Explicit type annotation tokens, if any.
    pub ty: Option<Vec<String>>,
    /// Whether the initializer's first value token is a float literal.
    pub float_init: bool,
    /// 1-based line of the binding.
    pub line: usize,
}

/// One `match` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Pattern tokens (up to `=>`, guard included).
    pub pattern: Vec<String>,
    /// 1-based line of the arm's pattern.
    pub line: usize,
}

impl Arm {
    /// Whether the arm is a catch-all: the pattern (before any `if`
    /// guard) is `_` or a single bare binding identifier.
    pub fn is_catch_all(&self) -> bool {
        let head: Vec<&String> = self
            .pattern
            .iter()
            .take_while(|t| t.as_str() != "if")
            .collect();
        match head.as_slice() {
            [t] => {
                t.as_str() == "_"
                    || t.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
                        && t.bytes().all(|b| b.is_ascii_lowercase() || b == b'_')
            }
            _ => false,
        }
    }
}

/// A `match` expression found in a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchExpr {
    /// Scrutinee tokens.
    pub scrutinee: Vec<String>,
    /// The arms.
    pub arms: Vec<Arm>,
    /// 1-based line of the `match` keyword.
    pub line: usize,
}

/// What a function body contributes to flow-aware rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Body {
    /// `let` bindings, in order.
    pub lets: Vec<LetBinding>,
    /// `match` expressions, in order (nested ones included).
    pub matches: Vec<MatchExpr>,
}

/// A parsed `fn` item.
#[derive(Debug, Clone, PartialEq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Visibility tokens (`pub`, `pub ( crate )`), empty for private.
    pub vis: Vec<String>,
    /// The receiver (`self` parameter) tokens, if any.
    pub receiver: Option<Vec<String>>,
    /// Non-receiver parameters.
    pub params: Vec<Param>,
    /// Return type tokens after `->`, if any.
    pub ret: Option<Vec<String>>,
    /// Body contributions (`None` for bodiless trait signatures).
    pub body: Option<Body>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits inside `#[cfg(test)]`.
    pub in_test: bool,
}

/// One named field of a struct or enum struct-variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (empty for tuple fields).
    pub name: String,
    /// Type tokens.
    pub ty: Vec<String>,
    /// 1-based line.
    pub line: usize,
}

impl Field {
    /// Whether the declared type is exactly `ty`.
    pub fn ty_is(&self, ty: &str) -> bool {
        self.ty.len() == 1 && self.ty[0] == ty
    }
}

/// A parsed `struct` item.
#[derive(Debug, Clone, PartialEq)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// Fields (named or tuple).
    pub fields: Vec<Field>,
    /// 1-based line.
    pub line: usize,
    /// Whether the item sits inside `#[cfg(test)]`.
    pub in_test: bool,
}

/// One enum variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Struct-variant fields (named) or tuple-variant fields (unnamed).
    pub fields: Vec<Field>,
    /// 1-based line.
    pub line: usize,
}

/// A parsed `enum` item.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumItem {
    /// Type name.
    pub name: String,
    /// The variants.
    pub variants: Vec<Variant>,
    /// 1-based line.
    pub line: usize,
    /// Whether the item sits inside `#[cfg(test)]`.
    pub in_test: bool,
}

/// A parsed `impl` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplItem {
    /// Last path segment of the implemented trait (`SimObserver` for
    /// `impl nomc_sim::SimObserver for X`), `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Self-type tokens (`Engine < 'a >`).
    pub self_ty: Vec<String>,
    /// Functions defined in the block.
    pub fns: Vec<FnItem>,
    /// 1-based line.
    pub line: usize,
    /// Whether the item sits inside `#[cfg(test)]`.
    pub in_test: bool,
}

impl ImplItem {
    /// First identifier of the self type (`Engine` for `Engine<'a>`).
    pub fn self_ty_name(&self) -> &str {
        self.self_ty
            .iter()
            .find(|t| t.bytes().next().is_some_and(is_ident_byte))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// A `use` declaration (tree text, space-joined).
#[derive(Debug, Clone, PartialEq)]
pub struct UseItem {
    /// The tree tokens between `use` and `;`.
    pub tree: Vec<String>,
    /// 1-based line.
    pub line: usize,
}

/// Everything the item parser extracted from one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Items {
    /// Free functions and functions inside `impl`/`trait`/`mod` blocks
    /// (flattened; `impls` also holds its own functions).
    pub fns: Vec<FnItem>,
    /// Structs.
    pub structs: Vec<StructItem>,
    /// Enums.
    pub enums: Vec<EnumItem>,
    /// Impl blocks.
    pub impls: Vec<ImplItem>,
    /// Use declarations.
    pub uses: Vec<UseItem>,
}

/// Parses the items of a scanned file. Total: never fails.
pub fn parse(sf: &SourceFile) -> Items {
    let tokens = tokenize(sf);
    let mut items = Items::default();
    parse_items(&tokens, 0, tokens.len(), &mut items, false);
    items
}

struct Cursor<'a> {
    toks: &'a [Token],
    i: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        if self.i < self.end {
            Some(&self.toks[self.i])
        } else {
            None
        }
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.peek();
        self.i += 1;
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(word))
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    }

    /// Advances past a balanced `open …​ close` group starting at the
    /// cursor (which must sit on `open`); robust to truncation.
    fn skip_group(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct && t.text == open {
                depth += 1;
            } else if t.kind == TokenKind::Punct && t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Advances past a balanced generics group `< … >` (the combined
    /// `->`/`=>` tokens can never miscount).
    fn skip_generics(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    ">=" => {
                        // `>= ` can only close generics when lexed from
                        // `>>=`-free code; treat as a single `>`.
                        depth -= 1;
                        if depth <= 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Index of the matching `}` for the `{` at the cursor.
    fn find_block_end(&self) -> usize {
        let mut depth = 0i32;
        let mut j = self.i;
        while j < self.end {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
            }
            j += 1;
        }
        self.end
    }
}

fn parse_items(toks: &[Token], start: usize, end: usize, items: &mut Items, in_impl: bool) {
    let mut c = Cursor {
        toks,
        i: start,
        end,
    };
    while let Some(t) = c.peek() {
        // Attributes: `#[…]` / `#![…]`.
        if t.kind == TokenKind::Punct && t.text == "#" {
            c.i += 1;
            if c.at_punct("!") {
                c.i += 1;
            }
            if c.at_punct("[") {
                c.skip_group("[", "]");
            }
            continue;
        }
        // Visibility.
        let mut vis = Vec::new();
        if c.at_ident("pub") {
            vis.push(c.bump().map(|t| t.text.clone()).unwrap_or_default());
            if c.at_punct("(") {
                let from = c.i;
                c.skip_group("(", ")");
                for t in &toks[from..c.i] {
                    vis.push(t.text.clone());
                }
            }
        }
        // Qualifiers that may precede `fn` (or stand alone: `const X`,
        // `unsafe impl`, `extern "C" {`).
        let mut saw_default = false;
        loop {
            if c.at_ident("const") {
                // `const fn` vs `const NAME: …;`.
                if c.toks.get(c.i + 1).is_some_and(|t| {
                    t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                }) {
                    c.i += 1;
                    continue;
                }
                break;
            }
            if c.at_ident("unsafe") || c.at_ident("async") || c.at_ident("default") {
                saw_default |= c.at_ident("default");
                c.i += 1;
                continue;
            }
            if c.at_ident("extern") {
                c.i += 1;
                if c.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                    c.i += 1;
                }
                continue;
            }
            break;
        }
        let _ = saw_default;
        let Some(kw) = c.peek() else { break };
        match kw.text.as_str() {
            "fn" if kw.kind == TokenKind::Ident => {
                if let Some(f) = parse_fn(&mut c, vis) {
                    items.fns.push(f);
                }
            }
            "struct" if kw.kind == TokenKind::Ident => {
                if let Some(s) = parse_struct(&mut c) {
                    items.structs.push(s);
                }
            }
            "enum" if kw.kind == TokenKind::Ident => {
                if let Some(e) = parse_enum(&mut c) {
                    items.enums.push(e);
                }
            }
            "impl" if kw.kind == TokenKind::Ident && !in_impl => {
                parse_impl(&mut c, items);
            }
            "trait" if kw.kind == TokenKind::Ident => {
                parse_trait(&mut c, items);
            }
            "mod" if kw.kind == TokenKind::Ident => {
                c.i += 1;
                c.bump(); // name
                if c.at_punct("{") {
                    let close = c.find_block_end();
                    parse_items(toks, c.i + 1, close, items, false);
                    c.i = close + 1;
                } else if c.at_punct(";") {
                    c.i += 1;
                }
            }
            "use" if kw.kind == TokenKind::Ident => {
                let line = kw.line;
                c.i += 1;
                let from = c.i;
                while let Some(t) = c.peek() {
                    if t.kind == TokenKind::Punct && t.text == ";" {
                        break;
                    }
                    c.i += 1;
                }
                items.uses.push(UseItem {
                    tree: toks[from..c.i].iter().map(|t| t.text.clone()).collect(),
                    line,
                });
                c.i += 1;
            }
            _ => {
                // `const X: … = …;`, `static`, `type`, macro calls,
                // stray tokens: skip to the next plausible item start,
                // jumping over any brace block as one unit.
                if c.at_punct("{") {
                    let close = c.find_block_end();
                    c.i = close + 1;
                } else {
                    c.i += 1;
                }
            }
        }
    }
}

fn parse_fn(c: &mut Cursor<'_>, vis: Vec<String>) -> Option<FnItem> {
    let kw = c.bump()?; // `fn`
    let (line, in_test) = (kw.line, kw.in_test);
    let name = c
        .bump()
        .filter(|t| t.kind == TokenKind::Ident)?
        .text
        .clone();
    if c.at_punct("<") {
        c.skip_generics();
    }
    if !c.at_punct("(") {
        return None;
    }
    let params_from = c.i + 1;
    c.skip_group("(", ")");
    let params_to = c.i.saturating_sub(1);
    let (receiver, params) = parse_params(&c.toks[params_from..params_to]);
    // Return type: tokens after `->` up to `where` / `{` / `;`.
    let mut ret = None;
    if c.at_punct("->") {
        c.i += 1;
        let from = c.i;
        let mut depth = 0i32;
        while let Some(t) = c.peek() {
            match t.text.as_str() {
                "<" | "(" | "[" if t.kind == TokenKind::Punct => depth += 1,
                ">" | ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
                "{" | ";" if t.kind == TokenKind::Punct && depth <= 0 => break,
                "where" if t.kind == TokenKind::Ident && depth <= 0 => break,
                _ => {}
            }
            c.i += 1;
        }
        ret = Some(c.toks[from..c.i].iter().map(|t| t.text.clone()).collect());
    }
    // Where clause: skip to `{` or `;` at depth 0.
    let mut depth = 0i32;
    while let Some(t) = c.peek() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "{" | ";" if depth <= 0 => break,
                _ => {}
            }
        }
        c.i += 1;
    }
    let body = if c.at_punct("{") {
        let close = c.find_block_end();
        let body = scan_body(&c.toks[c.i + 1..close]);
        c.i = close + 1;
        Some(body)
    } else {
        c.i += 1; // `;`
        None
    };
    Some(FnItem {
        name,
        vis,
        receiver,
        params,
        ret,
        body,
        line,
        in_test,
    })
}

/// Splits a parameter token list into (receiver, params).
fn parse_params(toks: &[Token]) -> (Option<Vec<String>>, Vec<Param>) {
    let mut receiver = None;
    let mut params = Vec::new();
    for group in split_top_level(toks, ",") {
        if group.is_empty() {
            continue;
        }
        // Parameter attributes are rare; strip a leading `#[…]`.
        let group = strip_attr(group);
        if group.iter().any(|t| t.is_ident("self")) && split_top_level(group, ":").len() == 1 {
            receiver = Some(group.iter().map(|t| t.text.clone()).collect());
            continue;
        }
        let halves = split_top_level(group, ":");
        if halves.len() < 2 {
            continue;
        }
        let name = halves[0]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let line = group.first().map(|t| t.line).unwrap_or(0);
        let ty: Vec<String> = halves[1..]
            .concat()
            .iter()
            .map(|t| t.text.clone())
            .collect();
        params.push(Param { name, ty, line });
    }
    (receiver, params)
}

fn strip_attr(toks: &[Token]) -> &[Token] {
    if toks.first().is_some_and(|t| t.text == "#") {
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate() {
            if t.kind == TokenKind::Punct {
                if t.text == "[" {
                    depth += 1;
                } else if t.text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        return &toks[j + 1..];
                    }
                }
            }
        }
    }
    toks
}

/// Splits on `sep` at bracket depth 0 (`->`/`=>` are atomic tokens, so
/// `Fn(f64) -> f64` never miscounts).
fn split_top_level<'a>(toks: &'a [Token], sep: &str) -> Vec<&'a [Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" | "(" | "[" | "{" => depth += 1,
                ">" | ")" | "]" | "}" => depth -= 1,
                s if s == sep && depth == 0 => {
                    out.push(&toks[start..j]);
                    start = j + 1;
                }
                _ => {}
            }
        }
    }
    out.push(&toks[start..]);
    out
}

fn parse_struct(c: &mut Cursor<'_>) -> Option<StructItem> {
    let kw = c.bump()?; // `struct`
    let (line, in_test) = (kw.line, kw.in_test);
    let name = c
        .bump()
        .filter(|t| t.kind == TokenKind::Ident)?
        .text
        .clone();
    if c.at_punct("<") {
        c.skip_generics();
    }
    // Where clause before the body.
    while c.peek().is_some() && !c.at_punct("{") && !c.at_punct("(") && !c.at_punct(";") {
        c.i += 1;
    }
    let mut fields = Vec::new();
    if c.at_punct("{") {
        let close = c.find_block_end();
        fields = parse_named_fields(&c.toks[c.i + 1..close]);
        c.i = close + 1;
    } else if c.at_punct("(") {
        let from = c.i + 1;
        c.skip_group("(", ")");
        for group in split_top_level(&c.toks[from..c.i.saturating_sub(1)], ",") {
            if group.is_empty() {
                continue;
            }
            let group = strip_attr(group);
            let ty: Vec<String> = group
                .iter()
                .filter(|t| !t.is_ident("pub"))
                .map(|t| t.text.clone())
                .collect();
            let line = group.first().map(|t| t.line).unwrap_or(line);
            fields.push(Field {
                name: String::new(),
                ty,
                line,
            });
        }
        if c.at_punct(";") {
            c.i += 1;
        }
    } else if c.at_punct(";") {
        c.i += 1;
    }
    Some(StructItem {
        name,
        fields,
        line,
        in_test,
    })
}

fn parse_named_fields(toks: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    for group in split_top_level(toks, ",") {
        let group = strip_attr(group);
        let halves = split_top_level(group, ":");
        if halves.len() < 2 || halves[0].is_empty() {
            continue;
        }
        let Some(name_tok) = halves[0]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && t.text != "pub" && t.text != "crate")
        else {
            continue;
        };
        fields.push(Field {
            name: name_tok.text.clone(),
            ty: halves[1..]
                .concat()
                .iter()
                .map(|t| t.text.clone())
                .collect(),
            line: name_tok.line,
        });
    }
    fields
}

fn parse_enum(c: &mut Cursor<'_>) -> Option<EnumItem> {
    let kw = c.bump()?; // `enum`
    let (line, in_test) = (kw.line, kw.in_test);
    let name = c
        .bump()
        .filter(|t| t.kind == TokenKind::Ident)?
        .text
        .clone();
    if c.at_punct("<") {
        c.skip_generics();
    }
    while c.peek().is_some() && !c.at_punct("{") && !c.at_punct(";") {
        c.i += 1;
    }
    let mut variants = Vec::new();
    if c.at_punct("{") {
        let close = c.find_block_end();
        for group in split_top_level(&c.toks[c.i + 1..close], ",") {
            let group = strip_attr(group);
            let Some(name_tok) = group.iter().find(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            let rest = &group[1..];
            let fields = if rest.first().is_some_and(|t| t.text == "{") {
                parse_named_fields(&rest[1..rest.len().saturating_sub(1)])
            } else if rest.first().is_some_and(|t| t.text == "(") {
                split_top_level(&rest[1..rest.len().saturating_sub(1)], ",")
                    .into_iter()
                    .filter(|g| !g.is_empty())
                    .map(|g| Field {
                        name: String::new(),
                        ty: g.iter().map(|t| t.text.clone()).collect(),
                        line: g.first().map(|t| t.line).unwrap_or(name_tok.line),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            variants.push(Variant {
                name: name_tok.text.clone(),
                fields,
                line: name_tok.line,
            });
        }
        c.i = close + 1;
    }
    Some(EnumItem {
        name,
        variants,
        line,
        in_test,
    })
}

fn parse_impl(c: &mut Cursor<'_>, items: &mut Items) {
    let kw = c.bump().expect("cursor sits on `impl`");
    let (line, in_test) = (kw.line, kw.in_test);
    if c.at_punct("<") {
        c.skip_generics();
    }
    // Tokens up to `{` at depth 0, split on `for`.
    let from = c.i;
    let mut depth = 0i32;
    while let Some(t) = c.peek() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                _ => {}
            }
        }
        c.i += 1;
    }
    let head = &c.toks[from..c.i];
    let where_at = head
        .iter()
        .position(|t| t.is_ident("where"))
        .unwrap_or(head.len());
    let head = &head[..where_at];
    let for_at = head.iter().position(|t| t.is_ident("for"));
    let (trait_name, self_ty) = match for_at {
        Some(at) => {
            let trait_name = head[..at]
                .iter()
                .rev()
                .find(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            (
                trait_name,
                head[at + 1..].iter().map(|t| t.text.clone()).collect(),
            )
        }
        None => (None, head.iter().map(|t| t.text.clone()).collect()),
    };
    if !c.at_punct("{") {
        return;
    }
    let close = c.find_block_end();
    let mut inner = Items::default();
    parse_items(c.toks, c.i + 1, close, &mut inner, true);
    c.i = close + 1;
    items.impls.push(ImplItem {
        trait_name,
        self_ty,
        fns: inner.fns.clone(),
        line,
        in_test,
    });
    items.fns.append(&mut inner.fns);
    items.structs.append(&mut inner.structs);
    items.enums.append(&mut inner.enums);
    items.uses.append(&mut inner.uses);
}

fn parse_trait(c: &mut Cursor<'_>, items: &mut Items) {
    c.bump(); // `trait`
    c.bump(); // name
    if c.at_punct("<") {
        c.skip_generics();
    }
    while c.peek().is_some() && !c.at_punct("{") && !c.at_punct(";") {
        c.i += 1;
    }
    if c.at_punct("{") {
        let close = c.find_block_end();
        parse_items(c.toks, c.i + 1, close, items, true);
        c.i = close + 1;
    } else {
        c.i += 1;
    }
}

/// Scans a function-body token range for `let` bindings and `match`
/// expressions (recursing into nested blocks naturally — the scan is
/// linear over every token, with `match` parsed structurally).
fn scan_body(toks: &[Token]) -> Body {
    let mut body = Body::default();
    scan_body_into(toks, &mut body);
    body
}

fn scan_body_into(toks: &[Token], body: &mut Body) {
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("let") {
            i += 1;
            let mut j = i;
            while toks
                .get(j)
                .is_some_and(|t| t.is_ident("mut") || t.is_ident("ref"))
            {
                j += 1;
            }
            let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            // `let Some(x)` / `let Point { .. }` / `let (a, b)` are
            // patterns, not simple bindings.
            if toks
                .get(j + 1)
                .is_some_and(|t| matches!(t.text.as_str(), "(" | "{" | "::"))
            {
                continue;
            }
            let mut ty = None;
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.text == ":") {
                let from = k + 1;
                let mut depth = 0i32;
                while let Some(t) = toks.get(k) {
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "<" | "(" | "[" => depth += 1,
                            ">" | ")" | "]" => depth -= 1,
                            "=" | ";" if depth <= 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                ty = Some(toks[from..k].iter().map(|t| t.text.clone()).collect());
            }
            let mut float_init = false;
            if toks.get(k).is_some_and(|t| t.text == "=") {
                let mut v = k + 1;
                if toks.get(v).is_some_and(|t| t.text == "-") {
                    v += 1;
                }
                float_init = toks.get(v).is_some_and(|t| {
                    t.is_float_literal() && toks.get(v + 1).is_none_or(|n| n.text != ".")
                });
            }
            body.lets.push(LetBinding {
                name: name_tok.text.clone(),
                ty,
                float_init,
                line: name_tok.line,
            });
            i = k;
        } else if t.is_ident("match") {
            i = parse_match(toks, i, body);
        } else {
            i += 1;
        }
    }
}

/// Parses `match scrutinee { arms }` starting at the `match` keyword;
/// returns the index just past the match. Arm values are scanned for
/// nested `let`/`match` via the caller's linear walk (the value tokens
/// are re-visited), so only patterns are handled here.
fn parse_match(toks: &[Token], at: usize, body: &mut Body) -> usize {
    let line = toks[at].line;
    let mut i = at + 1;
    let scrutinee_from = i;
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    if i >= toks.len() {
        return toks.len();
    }
    let scrutinee: Vec<String> = toks[scrutinee_from..i]
        .iter()
        .map(|t| t.text.clone())
        .collect();
    // Find the matching `}` of the arm block.
    let mut close = i;
    let mut d = 0i32;
    while let Some(t) = toks.get(close) {
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                d += 1;
            } else if t.text == "}" {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
        }
        close += 1;
    }
    let mut arms = Vec::new();
    let mut j = i + 1;
    while j < close {
        // Pattern: tokens up to top-level `=>`.
        let pat_from = j;
        let mut depth = 0i32;
        while j < close {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" | "(" | "[" | "{" => depth += 1,
                    ">" | ")" | "]" | "}" => depth -= 1,
                    "=>" if depth <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= close {
            break;
        }
        let pattern: Vec<String> = toks[pat_from..j].iter().map(|t| t.text.clone()).collect();
        if !pattern.is_empty() {
            arms.push(Arm {
                line: toks[pat_from].line,
                pattern,
            });
        }
        j += 1; // `=>`
                // Value: a block, or an expression up to a top-level `,`.
        if toks.get(j).is_some_and(|t| t.text == "{") {
            let mut d = 0i32;
            while j < close {
                let t = &toks[j];
                if t.kind == TokenKind::Punct {
                    if t.text == "{" {
                        d += 1;
                    } else if t.text == "}" {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                }
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == ",") {
                j += 1;
            }
        } else {
            let mut depth = 0i32;
            while j < close {
                let t = &toks[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "<" | "(" | "[" | "{" => depth += 1,
                        ">" | ")" | "]" | "}" => depth -= 1,
                        "," if depth <= 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    if t.is_ident("match") {
                        // Nested match in a non-block arm value: let the
                        // structural parser place its arms correctly.
                    }
                }
                j += 1;
            }
        }
    }
    body.matches.push(MatchExpr {
        scrutinee,
        arms,
        line,
    });
    // Re-scan the whole arm region linearly for nested lets/matches.
    // (Nested matches are double-counted as structure, which is fine:
    // rules treat `matches` as a set of observations, not a tree.)
    scan_nested(&toks[i + 1..close], body);
    if close < toks.len() {
        close + 1
    } else {
        toks.len()
    }
}

/// Scans arm bodies for nested `let`s and `match`es without re-adding
/// the enclosing match.
fn scan_nested(toks: &[Token], body: &mut Body) {
    let mut inner = Body::default();
    scan_body_into(toks, &mut inner);
    body.lets.append(&mut inner.lets);
    body.matches.append(&mut inner.matches);
}

/// Renders the items as a stable, human-diffable dump for golden
/// tests.
pub fn dump(items: &Items) -> String {
    let mut s = String::new();
    let join = |v: &[String]| v.join(" ");
    for f in &items.fns {
        let vis = if f.vis.is_empty() {
            String::new()
        } else {
            format!("{} ", join(&f.vis))
        };
        let recv = f
            .receiver
            .as_ref()
            .map(|r| join(r))
            .unwrap_or_else(|| "-".to_string());
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("{}: {}", p.name, p.ty_text()))
            .collect();
        let ret = f
            .ret
            .as_ref()
            .map(|r| format!(" -> {}", join(r)))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "fn {name} line={line} vis=[{vis}] recv=[{recv}] params=[{params}]{ret}{body}",
            name = f.name,
            line = f.line,
            vis = vis.trim(),
            recv = recv,
            params = params.join(", "),
            ret = ret,
            body = match &f.body {
                Some(b) => format!(" lets={} matches={}", b.lets.len(), b.matches.len()),
                None => " bodiless".to_string(),
            },
        );
        if let Some(b) = &f.body {
            for l in &b.lets {
                let _ = writeln!(
                    s,
                    "  let {name} line={line} ty=[{ty}] float_init={fi}",
                    name = l.name,
                    line = l.line,
                    ty = l.ty.as_ref().map(|t| join(t)).unwrap_or_default(),
                    fi = l.float_init,
                );
            }
            for m in &b.matches {
                let _ = writeln!(
                    s,
                    "  match line={line} scrutinee=[{sc}]",
                    line = m.line,
                    sc = join(&m.scrutinee),
                );
                for a in &m.arms {
                    let _ = writeln!(
                        s,
                        "    arm line={line} catch_all={ca} pattern=[{p}]",
                        line = a.line,
                        ca = a.is_catch_all(),
                        p = join(&a.pattern),
                    );
                }
            }
        }
    }
    for st in &items.structs {
        let _ = writeln!(s, "struct {} line={}", st.name, st.line);
        for f in &st.fields {
            let _ = writeln!(
                s,
                "  field {name} line={line} ty=[{ty}]",
                name = if f.name.is_empty() { "_" } else { &f.name },
                line = f.line,
                ty = join(&f.ty),
            );
        }
    }
    for en in &items.enums {
        let _ = writeln!(s, "enum {} line={}", en.name, en.line);
        for v in &en.variants {
            let _ = writeln!(s, "  variant {} line={}", v.name, v.line);
            for f in &v.fields {
                let _ = writeln!(
                    s,
                    "    field {name} line={line} ty=[{ty}]",
                    name = if f.name.is_empty() { "_" } else { &f.name },
                    line = f.line,
                    ty = join(&f.ty),
                );
            }
        }
    }
    for im in &items.impls {
        let _ = writeln!(
            s,
            "impl {tr}{for_kw}{ty} line={line} fns=[{fns}]",
            tr = im.trait_name.as_deref().unwrap_or(""),
            for_kw = if im.trait_name.is_some() { " for " } else { "" },
            ty = join(&im.self_ty),
            line = im.line,
            fns = im
                .fns
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    for u in &items.uses {
        let _ = writeln!(s, "use {} line={}", join(&u.tree), u.line);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Items {
        parse(&SourceFile::parse(src))
    }

    #[test]
    fn fn_signature_with_generics_and_receiver() {
        let it = items(
            "impl X {\n    pub fn map<F: Fn(f64) -> f64>(&mut self, gain_db: f64, f: F) -> f64 { f(gain_db) }\n}\n",
        );
        assert_eq!(it.impls.len(), 1);
        let f = &it.fns[0];
        assert_eq!(f.name, "map");
        assert_eq!(
            f.receiver.as_deref(),
            Some(&["&".to_string(), "mut".into(), "self".into()][..])
        );
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "gain_db");
        assert!(f.params[0].ty_is("f64"));
        assert_eq!(f.ret.as_deref(), Some(&["f64".to_string()][..]));
    }

    #[test]
    fn nested_generics_with_double_close() {
        let it = items("fn f(x: Vec<Vec<u64>>) -> Option<Box<u8>> {}\n");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].params[0].ty_text(), "Vec < Vec < u64 > >");
    }

    #[test]
    fn struct_and_enum_fields() {
        let it = items(
            "pub struct S { pub a_dbm: f64, b: Vec<u8> }\nenum E { A, B(u8, f64), C { x_mhz: f64 } }\n",
        );
        assert_eq!(it.structs[0].fields.len(), 2);
        assert_eq!(it.structs[0].fields[0].name, "a_dbm");
        assert!(it.structs[0].fields[0].ty_is("f64"));
        let e = &it.enums[0];
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[1].fields.len(), 2);
        assert_eq!(e.variants[2].fields[0].name, "x_mhz");
    }

    #[test]
    fn impl_trait_names_resolve_to_last_segment() {
        let it = items(
            "impl nomc_sim::runtime::SimObserver for Collector { fn on_event(&mut self) {} }\n",
        );
        let im = &it.impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("SimObserver"));
        assert_eq!(im.self_ty_name(), "Collector");
        assert_eq!(im.fns[0].name, "on_event");
    }

    #[test]
    fn match_arms_and_catch_all() {
        let it = items(
            "fn f(e: Event) {\n    match e {\n        Event::A(n) => g(n),\n        Event::B { x } => { h(x) }\n        _ => {}\n    }\n}\n",
        );
        let m = &it.fns[0].body.as_ref().unwrap().matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].is_catch_all());
        assert!(m.arms[2].is_catch_all());
        // A bare binding is also a catch-all.
        let it = items("fn f(x: u8) { match x { 0 => a(), other => b(other), } }\n");
        let m = &it.fns[0].body.as_ref().unwrap().matches[0];
        assert!(m.arms[1].is_catch_all());
        // A guarded wildcard is still a catch-all pattern-wise.
        let it = items("fn f(x: u8) { match x { v if v > 2 => a(), _ => b(), } }\n");
        let m = &it.fns[0].body.as_ref().unwrap().matches[0];
        assert!(m.arms[0].is_catch_all());
    }

    #[test]
    fn lets_with_types_and_float_inits() {
        let it = items(
            "fn f() {\n    let freq_mhz: f64 = x();\n    let mut acc = 0.0;\n    let n = 3;\n    let Some(v) = opt else { return };\n    let b = 2.0f64.to_bits();\n}\n",
        );
        let lets = &it.fns[0].body.as_ref().unwrap().lets;
        assert_eq!(lets.len(), 4);
        assert_eq!(lets[0].name, "freq_mhz");
        assert_eq!(lets[0].ty.as_deref(), Some(&["f64".to_string()][..]));
        assert!(lets[1].float_init);
        assert!(!lets[2].float_init);
        // `2.0f64.to_bits()` is a method call on the literal — not a
        // raw float binding.
        assert_eq!(lets[3].name, "b");
        assert!(!lets[3].float_init);
    }

    #[test]
    fn integer_suffixes_are_not_float_literals() {
        let toks = tokenize(&SourceFile::parse(
            "fn f() { let a = 0usize; let b = 1e9; let c = 2E-3; let d = 7u32; }\n",
        ));
        let lit = |t: &str| {
            toks.iter()
                .find(|k| k.text == t)
                .unwrap_or_else(|| panic!("token {t} missing"))
                .is_float_literal()
        };
        assert!(!lit("0usize"));
        assert!(!lit("7u32"));
        assert!(lit("1e9"));
        assert!(lit("2E-3"));
    }

    #[test]
    fn raw_strings_cannot_fake_items() {
        let it = items("fn real() { let s = r#\"fn bomb() { panic!() }\"#; }\n");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "real");
    }

    #[test]
    fn where_clauses_and_bodiless_trait_fns() {
        let it = items(
            "trait T {\n    fn sig(&self, x_db: f64) -> f64;\n    fn with_default(&self) -> u8 where Self: Sized { 0 }\n}\n",
        );
        assert_eq!(it.fns.len(), 2);
        assert!(it.fns[0].body.is_none());
        assert!(it.fns[1].body.is_some());
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let it = items("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\n");
        assert!(!it.fns[0].in_test);
        assert!(it.fns[1].in_test);
    }

    #[test]
    fn tuple_struct_and_unit_struct() {
        let it = items("pub struct Wrapper(pub f64);\nstruct Marker;\n");
        assert_eq!(it.structs[0].fields.len(), 1);
        assert!(it.structs[0].fields[0].ty_is("f64"));
        assert!(it.structs[1].fields.is_empty());
    }

    #[test]
    fn use_trees_are_captured() {
        let it = items("use std::collections::{BTreeMap, BTreeSet};\n");
        assert_eq!(it.uses.len(), 1);
        assert!(it.uses[0].tree.join(" ").contains("BTreeMap"));
    }
}
