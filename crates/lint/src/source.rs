//! Rust source scanning: a small lexer that strips comments and blanks
//! string/char-literal contents so rules can pattern-match on *code*
//! without tripping over prose, plus `#[cfg(test)]` region masking and
//! `// nomc-lint: allow(<rule>)` escape-hatch parsing.
//!
//! This is deliberately not a full parser: the rules it feeds are
//! line-oriented token checks, so a faithful per-line "code view" +
//! "comment view" is all they need. The lexer understands line and
//! (nested) block comments, regular/byte strings with escapes, raw
//! strings up to any `#` arity, char literals, and lifetimes.

/// One scanned source line.
#[derive(Debug, Default)]
pub struct Line {
    /// The line with comments removed and string/char contents blanked.
    pub code: String,
    /// Concatenated comment text found on the line.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A scanned file: the unit every source rule operates on.
#[derive(Debug)]
pub struct SourceFile {
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

impl SourceFile {
    pub fn parse(content: &str) -> SourceFile {
        let mut lines = lex(content);
        mark_test_regions(&mut lines);
        SourceFile { lines }
    }

    /// Whether diagnostics of `rule` on 1-based `line` are suppressed by
    /// an allow directive on that line, or on a pure comment line
    /// directly above it.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        let get = |idx: Option<usize>| idx.and_then(|i| self.lines.get(i));
        if get(line.checked_sub(1)).is_some_and(|l| comment_allows(&l.comment, rule)) {
            return true;
        }
        get(line.checked_sub(2))
            .is_some_and(|l| l.code.trim().is_empty() && comment_allows(&l.comment, rule))
    }

    /// Every allow directive in the file, with its 1-based line and the
    /// 1-based lines it can suppress (its own line, plus the next line
    /// when the directive is a pure comment line).
    pub fn directives(&self) -> Vec<Directive> {
        let mut out = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            let Some(rules) = parse_directive(&line.comment) else {
                continue;
            };
            let at = idx + 1;
            let covers = if line.code.trim().is_empty() {
                vec![at, at + 1]
            } else {
                vec![at]
            };
            out.push(Directive {
                line: at,
                rules,
                covers,
            });
        }
        out
    }
}

/// One `// nomc-lint: allow(a, b, …)` escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The rule tokens inside `allow(…)`, verbatim (possibly unknown).
    pub rules: Vec<String>,
    /// The 1-based lines the directive can suppress diagnostics on.
    pub covers: Vec<usize>,
}

/// Parses the rule list out of a `nomc-lint: allow(a, b, …)` directive.
///
/// The directive must be the *whole* comment (leading whitespace
/// aside): prose that merely mentions the syntax — rustdoc describing
/// the escape hatch, say — is not a directive. `//!`/`///` doc comments
/// can therefore never carry one (their text starts with `!` or `/`).
pub fn parse_directive(comment: &str) -> Option<Vec<String>> {
    let rest = comment.trim().strip_prefix("nomc-lint:")?;
    let rest = rest.trim_start().strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Whether comment text is an allow directive naming `rule`.
pub fn comment_allows(comment: &str, rule: &str) -> bool {
    parse_directive(comment).is_some_and(|rules| rules.iter().any(|r| r == rule))
}

fn lex(content: &str) -> Vec<Line> {
    let chars: Vec<char> = content.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Possible raw/byte string prefix: r"", r#""#, b"", br"".
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = j > i + 1 || c == 'r';
                    if chars.get(j) == Some(&'"') {
                        for &p in &chars[i..=j] {
                            cur.code.push(p);
                        }
                        state = if raw && (hashes > 0 || chars[j - 1] == 'r' || c == 'r') {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: consume to the closing quote.
                        cur.code.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\n' {
                            if chars[i] == '\\' {
                                i += 2;
                                cur.code.push(' ');
                            } else if chars[i] == '\'' {
                                cur.code.push('\'');
                                i += 1;
                                break;
                            } else {
                                cur.code.push(' ');
                                i += 1;
                            }
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        cur.code.push('\'');
                        cur.code.push(' ');
                        cur.code.push('\'');
                        i += 3;
                    } else {
                        // A lifetime (`'a`): keep the tick, scan on.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line,
/// the item header, and the full brace-delimited body).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_at: Option<i64> = None;
    for line in lines.iter_mut() {
        if line.code.contains("cfg(test)") {
            armed = true;
        }
        let mut in_test = armed || test_at.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if armed {
                        test_at = Some(depth);
                        armed = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if test_at == Some(depth) {
                        test_at = None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        line.in_test = in_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let sf = SourceFile::parse("let x = 1; // HashMap in prose\n/* SystemTime */ let y = 2;\n");
        assert!(!sf.lines[0].code.contains("HashMap"));
        assert!(sf.lines[0].comment.contains("HashMap"));
        assert!(!sf.lines[1].code.contains("SystemTime"));
        assert!(sf.lines[1].code.contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let sf = SourceFile::parse("let s = \"HashMap::new()\"; call();\n");
        assert!(!sf.lines[0].code.contains("HashMap"));
        assert!(sf.lines[0].code.contains("call();"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let sf =
            SourceFile::parse("let s = r#\"panic!(\"x\")\"#; let t = \"a\\\"panic!\";\nf();\n");
        assert!(!sf.lines[0].code.contains("panic!"));
        assert_eq!(sf.lines[1].code, "f();");
    }

    #[test]
    fn multiline_block_comment_and_string() {
        let sf = SourceFile::parse("/* unwrap()\n unwrap() */ ok();\nlet s = \"a\nunwrap()\";\n");
        assert!(!sf.lines[0].code.contains("unwrap"));
        assert!(!sf.lines[1].code.contains("unwrap"));
        assert!(sf.lines[1].code.contains("ok();"));
        assert!(!sf.lines[3].code.contains("unwrap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let sf = SourceFile::parse("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; g(x) }\n");
        let code = &sf.lines[0].code;
        assert!(code.contains("fn f<'a>(x: &'a str)"));
        assert!(code.contains("g(x)"));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn live2() {}\n";
        let sf = SourceFile::parse(src);
        let flags: Vec<bool> = sf.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let sf = SourceFile::parse("#[cfg(not(test))]\nfn live() {}\n");
        assert!(sf.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn allow_directive_same_and_previous_line() {
        let src = "// nomc-lint: allow(determinism)\nuse std::x;\nuse std::y; // nomc-lint: allow(a, determinism)\nuse std::z;\n";
        let sf = SourceFile::parse(src);
        assert!(sf.allows(2, "determinism"));
        assert!(sf.allows(3, "determinism"));
        // Line 3's trailing allow covers only line 3 (it has code).
        assert!(!sf.allows(4, "determinism"));
        assert!(!sf.allows(2, "unit-safety"));
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        // Rustdoc that *describes* the escape hatch must not act as one
        // (nor count as a dead allow).
        let src = "//! Suppress with `# nomc-lint: allow(dep-audit)` on the line.\n// The nomc-lint: allow(x) syntax is described here.\nuse std::x;\n";
        let sf = SourceFile::parse(src);
        assert!(sf.directives().is_empty());
        assert!(!sf.allows(2, "dep-audit"));
    }

    #[test]
    fn directives_record_lines_rules_and_coverage() {
        let src = "// nomc-lint: allow(determinism)\nuse std::x;\nuse std::y; // nomc-lint: allow(a, unit-safety)\n";
        let sf = SourceFile::parse(src);
        let d = sf.directives();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rules, vec!["determinism"]);
        assert_eq!(d[0].covers, vec![1, 2]);
        assert_eq!(d[1].line, 3);
        assert_eq!(d[1].rules, vec!["a", "unit-safety"]);
        assert_eq!(d[1].covers, vec![3]);
    }
}
