//! Seeded `exhaustive-dispatch` violations (fixture data — not
//! compiled). Linted under a pretend `sim/src/runtime/dispatch.rs`
//! path, where event/fault matches must name every variant.

fn dispatch(ev: Event) {
    match ev {
        Event::TxStart(t) => tx(t),
        _ => {}
    }
}

fn handle_fault(f: FaultKind) {
    match f {
        FaultKind::NodeDown(n) => down(n),
        other => ignore(other),
    }
}
