//! Clean fixture for the `determinism` rule: the same constructs are
//! fine in `#[cfg(test)]` code, behind a justified allow, or in prose.

/// A HashMap mentioned in a doc comment never trips the rule.
pub fn ordered_counts(events: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for &e in events {
        *counts.entry(e).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

// Lookup-only table whose iteration order is never observed; justified
// in DESIGN.md §8.
// nomc-lint: allow(determinism)
pub use std::collections::HashMap as LookupTable;

pub fn describe() -> &'static str {
    "uses HashMap and Instant::now only inside string literals"
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn dedup_in_tests_is_fine() {
        let seen: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(seen.len(), 2);
    }
}
