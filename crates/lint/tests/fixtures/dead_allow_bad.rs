//! Stale and misspelled allow directives (fixture data — not
//! compiled). A directive that suppresses nothing is itself an error.

// nomc-lint: allow(determinism)
fn nothing_nondeterministic_here() {}

fn id(x: u64) -> u64 {
    x // nomc-lint: allow(no-such-rule)
}
