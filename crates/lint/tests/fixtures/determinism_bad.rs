//! Seeded-violation fixture for the `determinism` rule (linted as if it
//! were `crates/sim/src/fixture.rs`). Not compiled — data for the
//! golden test.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn histogram(events: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &e in events {
        *counts.entry(e).or_insert(0) += 1;
    }
    let started = Instant::now();
    let _ = SystemTime::now();
    let _ = started;
    counts.into_iter().collect() // iteration order leaks into the result
}

pub fn jitter() -> f64 {
    rand::random::<f64>()
}
