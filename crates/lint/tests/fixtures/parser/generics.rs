//! Adversarial corpus: nested generics, `>>` closers, where clauses,
//! lifetimes and receivers (fixture data — not compiled).

pub fn nested(xs: Vec<Vec<u64>>, grid: Option<Box<Vec<Vec<f64>>>>) -> BTreeMap<String, Vec<u8>> {
    todo()
}

pub fn bounded<T: Clone + Into<Vec<u8>>, U>(t: T, u: U) -> U
where
    U: Default + From<Vec<Vec<T>>>,
{
    u
}

pub struct Curve<'a, T: Copy> {
    pub points: &'a [(f64, T)],
    pub labels: Vec<Option<&'a str>>,
}

impl<'a, T: Copy> Curve<'a, T> {
    pub fn first(&self) -> Option<(f64, T)> {
        self.points.first().copied()
    }

    fn shift<F: Fn(f64) -> f64>(&mut self, delta_db: f64, f: F) -> f64 {
        f(delta_db)
    }
}

pub trait Lut<K, V>
where
    K: Ord,
{
    fn get(&self, k: &K) -> Option<&V>;
    fn len_hint(&self) -> usize {
        0
    }
}

pub enum Node<T> {
    Leaf(T),
    Branch {
        children: Vec<Box<Node<T>>>,
        weight_mw: f64,
    },
}
