//! Adversarial corpus: string and raw-string payloads that *look* like
//! items must never reach the parser (fixture data — not compiled).

pub fn real_one(gain_db: f64) -> f64 {
    let s = r#"fn bomb() { panic!("not an item") }"#;
    let t = "struct Fake { x: f64 } impl Drop for Fake {}";
    let braces = "}}}}{{{{";
    let quote_in_raw = r#"she said "fn" twice"#;
    gain_db + s.len() as f64 + t.len() as f64 + braces.len() as f64 + quote_in_raw.len() as f64
}

/// A doc comment mentioning `fn fake_from_docs()` is prose, not code.
// A line comment with struct NotReal { c: Cell<u8> } is prose too.
pub struct RealStruct {
    /* block comment: enum Bogus { A, B } */
    pub field_a: u64,
}

pub fn real_two() -> &'static str {
    "match x { _ => unreachable }"
}
