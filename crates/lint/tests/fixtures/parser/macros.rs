//! Adversarial corpus: macro-heavy items — macro_rules bodies, derive
//! attributes, and macro invocations with `fn`-shaped fragments must
//! not confuse item recovery (fixture data — not compiled).

macro_rules! make_getter {
    ($name:ident, $field:ident: $ty:ty) => {
        pub fn $name(&self) -> $ty {
            self.$field
        }
    };
}

macro_rules! tricky {
    () => {
        "fn not_an_item() {}"
    };
    (fn $x:ident) => {
        stringify!($x)
    };
}

#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Wrapped(pub u64);

nomc_json::json_struct!(Config {
    window: u64,
    cutoff: f64,
});

pub fn uses_macros(n: u64) -> String {
    let v = vec![1u64, 2, 3];
    let s = format!("{n}:{}", v.len());
    assert_eq!(tricky!(), "fn not_an_item() {}");
    s
}

impl Wrapped {
    make_getter!(raw, 0: u64);

    pub fn real_after_macro(&self) -> u64 {
        self.0
    }
}

pub fn matches_in_macros(ev: u8) -> u8 {
    matches!(ev, 0 | 1) as u8
}
