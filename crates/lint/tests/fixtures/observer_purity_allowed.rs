//! Pure observer sinks and unaudited impls (fixture data — must lint
//! clean).

pub struct Metrics {
    count: u64,
    window: Vec<f64>,
}

impl SimObserver for Metrics {
    fn on_event(&mut self, ev: &Event) {
        self.count += 1;
    }

    fn wants_trace(&self) -> bool {
        false
    }
}

/// Interior mutability is fine outside the observer contract.
pub struct Scratch {
    memo: std::cell::RefCell<Vec<u64>>,
}

impl Scratch {
    fn fill(&self, xs: &mut Vec<u64>) {
        xs.extend(self.memo.borrow().iter());
    }
}
