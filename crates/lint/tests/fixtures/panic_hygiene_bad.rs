//! Seeded-violation fixture for the `panic-hygiene` rule (linted as if
//! it were `crates/sim/src/engine.rs`).

pub fn hot_path(values: &[u64], encoded: &str) -> u64 {
    let first = values[0];
    let parsed: u64 = encoded.parse().unwrap();
    if parsed == 0 {
        panic!("zero is not a valid frame length");
    }
    if first > 1000 {
        unreachable!();
    }
    first + parsed
}
