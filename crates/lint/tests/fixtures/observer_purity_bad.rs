//! Seeded `observer-purity` violations (fixture data — not compiled).

use std::cell::{Cell, RefCell};

pub struct Sneaky {
    hits: Cell<u64>,
    log: RefCell<Vec<u64>>,
    flag: std::sync::atomic::AtomicBool,
}

impl SimObserver for Sneaky {
    fn on_event(&mut self, ev: &mut Event) {
        self.hits.set(self.hits.get() + 1);
        ev.tag = 1;
    }

    fn on_run_end(self) {}
}

impl SimObserver for DeclaredElsewhere {
    fn on_event(&mut self, _ev: &Event) {}
}
