//! The sanctioned total comparison forms (fixture data — must lint
//! clean; see DESIGN.md §8 for why each replaces IEEE `==` exactly).

/// Exact endpoint tests via bit patterns.
pub fn classify(p: f64) -> bool {
    p.abs().to_bits() == 0 || p.to_bits() == f64::to_bits(1.0)
}

/// Total ordering over every bit pattern.
pub fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub struct Model {
    sigma_db: Db,
}

impl Model {
    /// Newtype equality is the derived-`PartialEq` form — totality is
    /// the newtype's concern, not the caller's.
    fn zero(&self) -> bool {
        self.sigma_db == Db::ZERO
    }

    /// Integer comparisons are out of the rule's domain entirely.
    fn ticks(&self, n: u64) -> bool {
        n == 0 && n != 3
    }
}
