//! Seeded-violation fixture for the `unit-safety` rule (linted as if it
//! were `crates/phy/src/fixture.rs`).

pub fn set_threshold(threshold_dbm: f64) -> f64 {
    threshold_dbm
}

pub struct Radio;

impl Radio {
    pub fn tune(&mut self, freq_mhz: f64, bandwidth_hz: f64) {
        let _ = (freq_mhz, bandwidth_hz);
    }

    pub fn wait_for_carrier(
        &self,
        timeout_secs: f64,
        rssi: f64,
    ) -> bool {
        timeout_secs > 0.0 && rssi > -95.0
    }
}

pub struct Link {
    pub gain_db: f64,
    pub hops: u32,
}

pub enum Reading {
    Cca { sensed_dbm: f64 },
    Idle,
}

pub fn accumulate(samples: &[f64]) -> f64 {
    let mut total_ms = 0.0;
    let span_secs: f64 = samples.iter().sum();
    for s in samples {
        total_ms += s;
    }
    total_ms + span_secs
}
