//! Exhaustive event dispatch and non-event wildcards (fixture data —
//! must lint clean under the pretend dispatch path).

fn dispatch(ev: Event) {
    match ev {
        Event::TxStart(t) => tx(t),
        Event::TxEnd { id } => end(id),
        Event::NodeDown(n) | Event::NodeUp(n) => fault(n),
    }
}

/// Matches that do not touch an event/fault enum keep their wildcards.
fn bucket(n: u8) -> u8 {
    match n {
        0 => 1,
        _ => 0,
    }
}
