//! Seeded `float-totality` violations (fixture data — not compiled).

/// Partial-order comparison on floats.
pub fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("finite")
}

/// Equality against literals and known-`f64` bindings.
pub fn classify(p: f64) -> bool {
    let acc = 0.5;
    p == 0.0 || acc != 1.0
}

pub struct Model {
    cutoff: f64,
}

impl Model {
    fn hits(&self, x: f64) -> bool {
        x == self.cutoff
    }
}
