//! A directive that suppresses a real diagnostic is *consumed* — it
//! appears in the `--format json` allow inventory, not as a finding
//! (fixture data — not compiled).

use std::collections::HashMap; // nomc-lint: allow(determinism)

fn lookup(m: &std::collections::BTreeMap<u64, u64>, k: u64) -> Option<u64> {
    m.get(&k).copied()
}
