//! Clean fixture for the `unit-safety` rule: newtyped unit parameters,
//! dimensionless `f64`s, private helpers, and one justified allow.

pub fn set_threshold(threshold: Dbm) -> Dbm {
    threshold
}

/// Probabilities, ratios and exponents are dimensionless: raw f64 is right.
pub fn frame_success_probability(p: f64, exponent: f64, target: f64) -> f64 {
    p.powf(exponent).min(target)
}

/// Private functions are not public API surface.
fn helper(sigma_db: f64) -> f64 {
    sigma_db
}

// FFI shim must match the C prototype exactly; justified in DESIGN.md §8.
// nomc-lint: allow(unit-safety)
pub fn legacy_register_write(level_dbm: f64) -> u8 {
    helper(level_dbm) as u8
}
