//! Clean fixture for the `panic-hygiene` rule: invariant-carrying
//! `expect`, identifier indexing, test-only unwraps, and one justified
//! allow.

pub fn hot_path(values: &[u64], index: usize) -> u64 {
    let first = *values
        .first()
        .expect("scheduler guarantees a non-empty event batch");
    // Identifier-based indexing is in-bounds by construction (ids are
    // minted by the engine) and is not flagged.
    let at = values[index];
    // Boundary case audited by hand; justified in DESIGN.md §8.
    let second = values[1]; // nomc-lint: allow(panic-hygiene)
    first + at + second
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let parsed: u64 = "7".parse().unwrap();
        assert_eq!(hot_path(&[parsed, 1, 2], 2), 10);
    }
}
