//! Golden-file test for `--format json`: the machine-readable report
//! shape CI diffs against the committed workspace inventory
//! (`crates/lint/allows_golden.json`) must never drift silently.

use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Builds a report the way the binary does — one file with a surviving
/// diagnostic, one with a consumed allow — and compares the rendered
/// JSON byte-for-byte with the committed golden.
#[test]
fn json_report_matches_golden() {
    let mut diagnostics = Vec::new();
    let mut allows = Vec::new();
    for (fixture, pretend) in [
        ("dead_allow_bad.rs", "crates/sim/src/fixture.rs"),
        ("dead_allow_allowed.rs", "crates/sim/src/allowed.rs"),
    ] {
        let content = fs::read_to_string(fixture_dir().join(fixture)).expect("fixture");
        let file = nomc_lint::lint_source_full(pretend, &content);
        diagnostics.extend(file.diagnostics);
        allows.extend(file.allows);
    }
    diagnostics.sort();
    allows.sort();
    let report = nomc_lint::LintReport {
        diagnostics,
        allows,
        files_scanned: 2,
    };
    let got = format!("{}\n", report.to_json().dump_pretty());

    let golden = fixture_dir().join("json_report.expected.json");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(&golden, &got).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden).expect("read json_report.expected.json");
    assert_eq!(
        got, expected,
        "JSON report shape diverged (run with UPDATE_GOLDENS=1 to regenerate)"
    );
}

/// The committed workspace inventory must encode the target state:
/// zero diagnostics, and exactly one accounted allow — the results
/// server's deadline module, the single place wall-clock time may be
/// read (socket I/O budgets are real time by nature). Any other allow
/// is scope creep and must fail here, not just in the CI diff.
#[test]
fn committed_workspace_inventory_is_empty() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("allows_golden.json");
    let text = fs::read_to_string(&path).expect("read allows_golden.json");
    let json = nomc_json::Json::parse(&text).expect("allows_golden.json parses");
    let diags = json
        .get("diagnostics")
        .and_then(nomc_json::Json::as_array)
        .expect("diagnostics array");
    let allows = json
        .get("allows")
        .and_then(nomc_json::Json::as_array)
        .expect("allows array");
    assert!(diags.is_empty(), "committed inventory records diagnostics");
    let described: Vec<(Option<&str>, Option<&str>)> = allows
        .iter()
        .map(|a| {
            (
                a.get("file").and_then(nomc_json::Json::as_str),
                a.get("rule").and_then(nomc_json::Json::as_str),
            )
        })
        .collect();
    assert_eq!(
        described,
        vec![(Some("crates/serve/src/deadline.rs"), Some("determinism"))],
        "the only accounted allow is the serve deadline module's wall clock"
    );
}
