//! The real workspace must lint clean: this is the same gate `ci.sh`
//! runs via `cargo run -p nomc-lint`, wired as a test so `cargo test`
//! alone catches regressions.

use std::path::PathBuf;

#[test]
fn the_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nomc_lint::lint_workspace(&root).expect("workspace walk failed");
    assert!(
        report.diagnostics.is_empty(),
        "nomc-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk saw the whole workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
}
