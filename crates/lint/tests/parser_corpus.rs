//! The item parser's adversarial corpus and totality guarantees.
//!
//! Two layers: (1) each corpus file under `tests/fixtures/parser/`
//! parses to exactly the item dump in its committed `.dump` golden —
//! raw strings containing `fn`, nested `>>` generics, where clauses
//! and macro-heavy items must neither invent nor lose items; (2) the
//! parser is *total* over the real workspace — every in-tree `.rs`
//! file parses and dumps without panicking, so a new language construct
//! anywhere in the tree surfaces here before it can confuse a rule.

use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/parser")
}

fn parse_dump(src: &str) -> String {
    let sf = nomc_lint::source::SourceFile::parse(src);
    nomc_lint::parser::dump(&nomc_lint::parser::parse(&sf))
}

fn assert_matches_dump(name: &str) {
    let src = fs::read_to_string(corpus_dir().join(name))
        .unwrap_or_else(|e| panic!("read corpus {name}: {e}"));
    let got = parse_dump(&src);
    let golden = format!("{}.dump", name.trim_end_matches(".rs"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(corpus_dir().join(&golden), &got)
            .unwrap_or_else(|e| panic!("write golden {golden}: {e}"));
        return;
    }
    let expected = fs::read_to_string(corpus_dir().join(&golden))
        .unwrap_or_else(|e| panic!("read golden {golden}: {e}"));
    assert_eq!(
        got, expected,
        "{name}: parse dump diverged from {golden} \
         (run with UPDATE_GOLDENS=1 to regenerate)"
    );
}

#[test]
fn raw_strings_corpus_matches_golden() {
    assert_matches_dump("raw_strings.rs");
}

#[test]
fn generics_corpus_matches_golden() {
    assert_matches_dump("generics.rs");
}

#[test]
fn macros_corpus_matches_golden() {
    assert_matches_dump("macros.rs");
}

#[test]
fn raw_string_payloads_produce_no_phantom_items() {
    let src = fs::read_to_string(corpus_dir().join("raw_strings.rs")).unwrap();
    let sf = nomc_lint::source::SourceFile::parse(&src);
    let items = nomc_lint::parser::parse(&sf);
    let fn_names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(fn_names, ["real_one", "real_two"]);
    assert_eq!(items.structs.len(), 1);
    assert_eq!(items.structs[0].name, "RealStruct");
    assert!(
        items.enums.is_empty(),
        "enum text in comments leaked through"
    );
}

/// The parser accepts every file in the real workspace: walking the
/// tree must produce a dump (any output — totality, not correctness)
/// for each `.rs` file without panicking.
#[test]
fn parser_accepts_every_workspace_file() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 100,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    for f in &files {
        let src = fs::read_to_string(f).unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        let dump = parse_dump(&src);
        // A file defining any `fn` must yield at least one parsed item.
        if src.lines().any(|l| l.trim_start().starts_with("pub fn ")) {
            assert!(
                !dump.is_empty(),
                "{}: defines functions but parsed to zero items",
                f.display()
            );
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
