//! Golden-file tests for the rule corpus under `tests/fixtures/`.
//!
//! Each rule has a `*_bad` fixture (seeded violations — must produce
//! exactly the diagnostics in its `.expected` file) and a `*_allowed`
//! fixture (the same constructs used legitimately or behind an allow
//! directive — must produce zero diagnostics). Fixtures are linted
//! under a pretend workspace-relative path so the scope predicates
//! apply; they are data, not compiled code.

use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(diags: &[nomc_lint::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| format!("{}: {}: {}\n", d.line, d.rule, d.message))
        .collect()
}

fn lint_fixture(name: &str, pretend_path: &str) -> String {
    let content = fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let diags = if name.ends_with(".toml") {
        nomc_lint::lint_manifest(pretend_path, &content)
    } else {
        nomc_lint::lint_source(pretend_path, &content)
    };
    render(&diags)
}

fn golden(name: &str) -> String {
    fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("read golden file {name}: {e}"))
}

fn assert_matches_golden(fixture: &str, pretend_path: &str, expected: &str) {
    let got = lint_fixture(fixture, pretend_path);
    assert!(
        !got.is_empty(),
        "{fixture}: the seeded-violation fixture produced no diagnostics"
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(fixture_dir().join(expected), &got)
            .unwrap_or_else(|e| panic!("write golden {expected}: {e}"));
        return;
    }
    assert_eq!(
        got,
        golden(expected),
        "{fixture}: diagnostics diverged from {expected} \
         (run with UPDATE_GOLDENS=1 to regenerate)"
    );
}

fn assert_clean(fixture: &str, pretend_path: &str) {
    let got = lint_fixture(fixture, pretend_path);
    assert!(got.is_empty(), "{fixture}: expected clean, got:\n{got}");
}

#[test]
fn determinism_bad_matches_golden() {
    assert_matches_golden(
        "determinism_bad.rs",
        "crates/sim/src/fixture.rs",
        "determinism_bad.expected",
    );
}

#[test]
fn determinism_allowed_is_clean() {
    assert_clean("determinism_allowed.rs", "crates/sim/src/fixture.rs");
}

#[test]
fn unit_safety_bad_matches_golden() {
    assert_matches_golden(
        "unit_safety_bad.rs",
        "crates/phy/src/fixture.rs",
        "unit_safety_bad.expected",
    );
}

#[test]
fn unit_safety_allowed_is_clean() {
    assert_clean("unit_safety_allowed.rs", "crates/phy/src/fixture.rs");
}

#[test]
fn panic_hygiene_bad_matches_golden() {
    assert_matches_golden(
        "panic_hygiene_bad.rs",
        "crates/sim/src/engine.rs",
        "panic_hygiene_bad.expected",
    );
}

#[test]
fn panic_hygiene_allowed_is_clean() {
    assert_clean("panic_hygiene_allowed.rs", "crates/sim/src/engine.rs");
}

#[test]
fn dep_audit_bad_matches_golden() {
    assert_matches_golden(
        "dep_audit_bad.toml",
        "crates/fixture/Cargo.toml",
        "dep_audit_bad.expected",
    );
}

#[test]
fn dep_audit_allowed_is_clean() {
    assert_clean("dep_audit_allowed.toml", "crates/fixture/Cargo.toml");
}

#[test]
fn float_totality_bad_matches_golden() {
    assert_matches_golden(
        "float_totality_bad.rs",
        "crates/phy/src/fixture.rs",
        "float_totality_bad.expected",
    );
}

#[test]
fn float_totality_allowed_is_clean() {
    assert_clean("float_totality_allowed.rs", "crates/phy/src/fixture.rs");
}

#[test]
fn observer_purity_bad_matches_golden() {
    assert_matches_golden(
        "observer_purity_bad.rs",
        "crates/sim/src/fixture.rs",
        "observer_purity_bad.expected",
    );
}

#[test]
fn observer_purity_allowed_is_clean() {
    assert_clean("observer_purity_allowed.rs", "crates/sim/src/fixture.rs");
}

#[test]
fn exhaustive_dispatch_bad_matches_golden() {
    assert_matches_golden(
        "exhaustive_dispatch_bad.rs",
        "crates/sim/src/runtime/dispatch.rs",
        "exhaustive_dispatch_bad.expected",
    );
}

#[test]
fn exhaustive_dispatch_allowed_is_clean() {
    assert_clean(
        "exhaustive_dispatch_allowed.rs",
        "crates/sim/src/runtime/dispatch.rs",
    );
}

#[test]
fn dead_allow_bad_matches_golden() {
    assert_matches_golden(
        "dead_allow_bad.rs",
        "crates/sim/src/fixture.rs",
        "dead_allow_bad.expected",
    );
}

#[test]
fn dead_allow_allowed_is_clean_and_inventoried() {
    assert_clean("dead_allow_allowed.rs", "crates/sim/src/fixture.rs");
    // The consumed directive must appear in the allow inventory — a
    // clean lint with a silent escape hatch would defeat the rule.
    let content = fs::read_to_string(fixture_dir().join("dead_allow_allowed.rs")).unwrap();
    let file = nomc_lint::lint_source_full("crates/sim/src/fixture.rs", &content);
    assert_eq!(file.allows.len(), 1);
    assert_eq!(file.allows[0].rule, "determinism");
}

#[test]
fn fixtures_outside_rule_scope_are_clean() {
    // The same violating source is fine in a crate the rule does not
    // govern (e.g. the bench harness legitimately reads wall-clock).
    assert_clean("determinism_bad.rs", "crates/bench/src/fixture.rs");
    assert_clean("panic_hygiene_bad.rs", "crates/mac/src/lib.rs");
    assert_clean("float_totality_bad.rs", "crates/bench/src/fixture.rs");
    // Event-match wildcards are only policed in the two dispatch files.
    assert_clean("exhaustive_dispatch_bad.rs", "crates/sim/src/engine.rs");
}
