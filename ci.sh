#!/usr/bin/env bash
# The full CI gate, runnable locally. The workspace is hermetic — every
# dependency is an in-tree path crate — so all steps run offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> fault injection: golden trace, runner isolation, recovery acceptance"
cargo test -p nomc-integration-tests --test trace_golden_faults -q --offline
cargo test -p nomc-experiments --lib -q --offline runner::
cargo test -p nomc-experiments --lib -q --offline kill_reboot

echo "==> snapshot/restore: mid-run checkpoint byte identity"
# The DESIGN.md §14 contract: run-to-event-K, snapshot, restore,
# run-to-end is byte-identical to an uninterrupted run — serial,
# sharded, and with every fault type in flight — and corrupt snapshots
# are typed errors, never panics.
cargo test -p nomc-integration-tests --test snapshot_resume -q --offline
cargo test -p nomc-experiments --lib -q --offline checkpoint::

echo "==> sweep crash safety: kill-and-resume must be byte-identical"
# Thread-count matrix: sweep determinism must hold whether the test
# binary serializes the suites or races them — any shared mutable state
# between parameter points shows up as a flake under 2/8. The
# sweep_crash suite SIGKILLs real sweep processes both between members
# (journal replay) and mid-member (restart from the last engine
# checkpoint) and requires the resumed report byte-identical.
for threads in 1 2 8; do
  echo "    --test-threads $threads"
  cargo test -p nomc-experiments --lib -q --offline sweep:: -- --test-threads "$threads"
done
cargo test -p nomc-cli --test sweep_crash -q --offline

echo "==> sharded-engine determinism: golden traces byte-identical at every shard count"
# The clean and faulted two-network fixtures pin the serial engine's
# event history; the sharded engine must reproduce them byte for byte on
# 1/2/4/8 worker threads (one interaction component, so this also pins
# the single-component delegation path). The four-network partitioned
# faulted fixture rides in trace_golden_faults and pins the
# componentized path — per-shard seeds, cross-shard fault routing — at
# the same shard counts.
for shards in 1 2 4 8; do
  echo "    --shards $shards"
  NOMC_SHARDS="$shards" cargo test -p nomc-integration-tests \
    --test trace_golden --test trace_golden_faults -q --offline
done
cargo test -p nomc-integration-tests --test shard_determinism -q --offline

echo "==> ext_fault_recovery smoke (quick sweep must recover at every duty)"
cargo run -p nomc-experiments --release --offline --bin fault_recovery -- --quick

echo "==> serve smoke (submit, wait, resubmit hits cache, SIGTERM drains)"
# Live end-to-end pass over the results server: a job submitted twice
# must come back byte-identical without re-simulating, and SIGTERM must
# drain to exit code 0. The SIGKILL chaos path rides in the
# serve_chaos test suite (cargo test above).
SERVE_STATE="$(mktemp -d)"
SERVE_SCENARIO="$SERVE_STATE/scenario.json"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SERVE_STATE"' EXIT
./target/release/nomc generate line "$SERVE_SCENARIO"
./target/release/nomc serve --state-dir "$SERVE_STATE" --addr 127.0.0.1:0 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$SERVE_STATE/serve.addr" ] && break
  sleep 0.1
done
SERVE_ADDR="$(cat "$SERVE_STATE/serve.addr")"
./target/release/nomc submit "$SERVE_SCENARIO" --addr "$SERVE_ADDR" \
  --seeds 1,2 --wait --report "$SERVE_STATE/report_a.json"
./target/release/nomc submit "$SERVE_SCENARIO" --addr "$SERVE_ADDR" \
  --seeds 1,2 --wait --report "$SERVE_STATE/report_b.json" \
  | grep -q '"cached":true' || { echo "resubmit missed the cache"; exit 1; }
cmp "$SERVE_STATE/report_a.json" "$SERVE_STATE/report_b.json" \
  || { echo "cached report not byte-identical"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "SIGTERM drain exited nonzero"; exit 1; }
trap - EXIT
rm -rf "$SERVE_STATE"

echo "==> bench smoke (single iteration, no report written)"
cargo bench -p nomc-bench --bench sim --offline -- --test
cargo bench -p nomc-bench --bench lint --offline -- --test
cargo bench -p nomc-bench --bench serve --offline -- --test

echo "==> bench guard (every committed BENCH_*.json within its committed budget)"
# The committed BENCH_<group>.json files are the perf-trajectory record;
# bench_guard checks every bench in every group against the per-bench
# mean_ns budgets in crates/bench/bench_budgets.json, and fails on
# unbudgeted or silently-dropped benches too.
cargo run -p nomc-bench --release --offline --quiet --bin bench_guard

echo "==> cargo doc (no deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> nomc-lint: all eight rules, zero findings"
cargo run -p nomc-lint --release --offline --quiet -- .

echo "==> nomc-lint --format json vs committed allow inventory"
# The committed crates/lint/allows_golden.json is the honest record of
# every live escape hatch (target: none). A new allow directive — even
# one that suppresses a real finding — changes the JSON report and
# fails this diff until it is committed and justified in DESIGN.md §8.
cargo run -p nomc-lint --release --offline --quiet -- --format json . \
  | diff -u crates/lint/allows_golden.json - \
  || { echo "lint inventory drifted from crates/lint/allows_golden.json"; exit 1; }

echo "CI OK"
