#!/usr/bin/env bash
# The full CI gate, runnable locally. The workspace is hermetic — every
# dependency is an in-tree path crate — so all steps run offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> fault injection: golden trace, runner isolation, recovery acceptance"
cargo test -p nomc-integration-tests --test trace_golden_faults -q --offline
cargo test -p nomc-experiments --lib -q --offline runner::
cargo test -p nomc-experiments --lib -q --offline kill_reboot

echo "==> sweep crash safety: kill-and-resume must be byte-identical"
cargo test -p nomc-experiments --lib -q --offline sweep::
cargo test -p nomc-cli --test sweep_crash -q --offline

echo "==> ext_fault_recovery smoke (quick sweep must recover at every duty)"
cargo run -p nomc-experiments --release --offline --bin fault_recovery -- --quick

echo "==> bench smoke (single iteration, no report written)"
cargo bench -p nomc-bench --bench sim --offline -- --test

echo "==> bench baseline guard (fault layer must not tax fault-free runs)"
# The committed BENCH_sim.json is the perf-trajectory record; the
# fault-free kernel must stay inside its historical budget even with
# the fault layer compiled in (empty plans are bit-identical runs).
awk '
  /"name":/    { name = $2; gsub(/[",]/, "", name) }
  /"mean_ns":/ {
    mean = $2; gsub(/,/, "", mean)
    if (name == "power_sense_heavy") {
      found = 1
      if (mean + 0 > 12000000) {
        printf "power_sense_heavy regressed: %.0f ns > 12 ms budget\n", mean
        exit 1
      }
    }
  }
  END {
    if (!found) { print "power_sense_heavy missing from BENCH_sim.json"; exit 1 }
  }
' crates/bench/BENCH_sim.json

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> nomc-lint: determinism / unit-safety / panic-hygiene / dep-audit"
cargo run -p nomc-lint --release --offline --quiet -- .

echo "CI OK"
