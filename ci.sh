#!/usr/bin/env bash
# The full CI gate, runnable locally. The workspace is hermetic — every
# dependency is an in-tree path crate — so all steps run offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> bench smoke (single iteration, no report written)"
cargo bench -p nomc-bench --bench sim --offline -- --test

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> nomc-lint: determinism / unit-safety / panic-hygiene / dep-audit"
cargo run -p nomc-lint --release --offline --quiet -- .

echo "CI OK"
