#!/usr/bin/env bash
# The full CI gate, runnable locally. The workspace is hermetic — every
# dependency is an in-tree path crate — so all steps run offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> dependency audit: only in-tree nomc-* crates allowed"
external=$(cargo tree --workspace --offline --prefix none \
  | sed 's/ (\*)$//' | awk '{print $1}' | sort -u | grep -v '^nomc-' || true)
if [ -n "$external" ]; then
  echo "unexpected external dependencies:" >&2
  echo "$external" >&2
  exit 1
fi

echo "CI OK"
